"""Unit tests for the UDP service and the flow monitor."""

import pytest

from repro.sim.monitor import FlowMonitor
from repro.sim.engine import Simulator
from repro.sim.packet import IP_UDP_HEADER
from repro.sim.topology import path_topology
from repro.sim.udp import UdpEndpoint


def make_pair(rate=10e6, rtt=0.02):
    top = path_topology(rate_bps=rate, rtt=rtt)
    a = UdpEndpoint(top.src, 5000)
    b = UdpEndpoint(top.dst, 6000)
    return top.net, a, b


class TestUdp:
    def test_payload_and_size_delivered(self):
        net, a, b = make_pair()
        got = []
        b.on_receive(lambda p, addr, size: got.append((p, addr, size)))
        a.sendto({"k": 1}, 100, b.address)
        net.run(until=1)
        assert got == [({"k": 1}, a.address, 100)]

    def test_header_overhead_on_wire(self):
        net, a, b = make_pair()
        a.sendto(None, 1000, b.address)
        assert a.bytes_sent == 1000 + IP_UDP_HEADER

    def test_no_reliability_on_overflow(self):
        # Tiny bottleneck queue: most datagrams vanish, none retried.
        top = path_topology(rate_bps=1e6, rtt=0.02, queue_pkts=2)
        a = UdpEndpoint(top.src, 1)
        b = UdpEndpoint(top.dst, 2)
        got = []
        b.on_receive(lambda p, addr, size: got.append(p))
        for i in range(50):
            a.sendto(i, 1000, b.address)
        top.net.run(until=5)
        assert 0 < len(got) < 50

    def test_auto_port_allocation(self):
        net, a, b = make_pair()
        c = UdpEndpoint(b.host)
        assert c.port != b.port

    def test_closed_endpoint_raises(self):
        net, a, b = make_pair()
        a.close()
        with pytest.raises(RuntimeError):
            a.sendto(None, 10, b.address)

    def test_close_unbinds_port(self):
        net, a, b = make_pair()
        port = a.port
        a.close()
        UdpEndpoint(a.host, port)  # port reusable


class TestFlowMonitor:
    def test_total_and_average(self):
        sim = Simulator()
        mon = FlowMonitor(sim, bin_width=0.1)
        for i in range(10):
            sim.schedule(i * 0.1, mon.on_deliver, "f", 1000)
        sim.run(until=1.0)
        assert mon.total_bytes["f"] == 10_000
        assert mon.throughput_bps("f", 0, 1.0) == pytest.approx(80_000)

    def test_series_resolution(self):
        sim = Simulator()
        mon = FlowMonitor(sim, bin_width=0.1)
        sim.schedule(0.05, mon.on_deliver, "f", 500)
        sim.schedule(0.95, mon.on_deliver, "f", 1500)
        sim.run(until=1.0)
        series = mon.series("f", 0.5, 0, 1.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(500 * 8 / 0.5)
        assert series[1][1] == pytest.approx(1500 * 8 / 0.5)

    def test_series_requires_multiple_of_bin(self):
        sim = Simulator()
        mon = FlowMonitor(sim, bin_width=0.1)
        with pytest.raises(ValueError):
            mon.series("f", 0.25)

    def test_unknown_flow_zero(self):
        sim = Simulator()
        mon = FlowMonitor(sim)
        assert mon.throughput_bps("nope", 0, 1) == 0.0

    def test_sample_matrix_shape(self):
        sim = Simulator()
        mon = FlowMonitor(sim, bin_width=0.1)
        for f in ("a", "b"):
            for i in range(20):
                sim.schedule(i * 0.1 + 0.01, mon.on_deliver, f, 100)
        sim.run(until=2.0)
        m = mon.sample_matrix(["a", "b"], 1.0, 0.0, 2.0)
        assert len(m) == 2 and len(m[0]) == 2


class TestFlowMonitorBinBoundaries:
    """The explicit partial-bin rule: a bin counts iff it overlaps
    [t0, t1), with 1e-9 snap to bin edges (no float-rounding flips)."""

    def _mon(self):
        sim = Simulator()
        mon = FlowMonitor(sim, bin_width=0.1)
        # one 1000-byte delivery in the middle of each of bins 0..9
        for i in range(10):
            sim.schedule(i * 0.1 + 0.05, mon.on_deliver, "f", 1000)
        sim.run(until=1.0)
        return mon

    def test_t1_on_boundary_excludes_next_bin(self):
        mon = self._mon()
        # [0, 0.9): bins 0..8 only, regardless of float noise in 0.9/0.1
        assert mon.throughput_bps("f", 0.0, 0.9) == pytest.approx(9000 * 8 / 0.9)

    def test_t1_with_float_noise_is_stable(self):
        mon = self._mon()
        # 0.9000000000001 and 0.8999999999999 are the "same" boundary
        hi = mon.throughput_bps("f", 0.0, 0.9 + 1e-13)
        lo = mon.throughput_bps("f", 0.0, 0.9 - 1e-13)
        assert hi == pytest.approx(lo, rel=1e-6)
        # and the classic accumulated-float case: 9 * 0.1 != 0.9 exactly
        acc = sum([0.1] * 9)
        assert mon.throughput_bps("f", 0.0, acc) == pytest.approx(
            9000 * 8 / acc, rel=1e-6
        )

    def test_final_partial_bin_included(self):
        mon = self._mon()
        # [0, 0.95): bin 9 overlaps the interval, so its bytes count
        assert mon.throughput_bps("f", 0.0, 0.95) == pytest.approx(
            10_000 * 8 / 0.95
        )

    def test_first_partial_bin_included(self):
        mon = self._mon()
        # [0.85, 1.0): bins 8 and 9 overlap
        assert mon.throughput_bps("f", 0.85, 1.0) == pytest.approx(
            2000 * 8 / 0.15
        )

    def test_degenerate_interval_inside_one_bin(self):
        mon = self._mon()
        # interval entirely inside bin 3: that bin's bytes, short window
        assert mon.throughput_bps("f", 0.32, 0.38) == pytest.approx(
            1000 * 8 / 0.06
        )
