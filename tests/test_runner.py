"""Sweep runner: digests, the result cache, and worker orchestration.

The expensive end-to-end properties (full-sweep wall clock, warm-sweep
cache hits at scale) live in CI's sweep-smoke job; here we pin the
invariants the cache's correctness rests on: digest stability across
processes and hash seeds, invalidation on config/source change, corrupt
entry self-healing, and jobs-independence of results and traces.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner.cache import ResultCache
from repro.runner.digest import SRC_ROOT, experiment_digest, import_closure
from repro.runner.sweep import (
    SweepReport,
    check_regressions,
    run_sweep,
    select_experiments,
    update_bench,
)

SCALE = 0.05


class TestDigest:
    def test_stable_within_process(self):
        d1, _ = experiment_digest("fig02", SCALE)
        d2, _ = experiment_digest("fig02", SCALE)
        assert d1 == d2
        assert len(d1) == 64

    def test_stable_across_processes_and_hash_seeds(self):
        """PYTHONHASHSEED must not leak into the digest."""
        code = (
            "from repro.runner.digest import experiment_digest;"
            f"print(experiment_digest('fig02', {SCALE})[0])"
        )
        digests = set()
        for seed in ("0", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", code],
                env=env, check=True, capture_output=True, text=True,
            )
            digests.add(out.stdout.strip())
        digests.add(experiment_digest("fig02", SCALE)[0])
        assert len(digests) == 1

    def test_scale_and_overrides_invalidate(self):
        base, _ = experiment_digest("fig02", SCALE)
        other_scale, _ = experiment_digest("fig02", 0.3)
        with_override, _ = experiment_digest("fig02", SCALE, {"duration": 5})
        other_override, _ = experiment_digest("fig02", SCALE, {"duration": 6})
        assert len({base, other_scale, with_override, other_override}) == 4
        # tuple-valued overrides are representable and order-insensitive
        a, _ = experiment_digest("fig02", SCALE, {"rtts": (0.01,), "n_flows": 4})
        b, _ = experiment_digest("fig02", SCALE, {"n_flows": 4, "rtts": (0.01,)})
        assert a == b

    def test_experiments_differ(self):
        d1, _ = experiment_digest("fig02", SCALE)
        d2, _ = experiment_digest("fig09", SCALE)
        assert d1 != d2

    def test_closure_covers_the_stack_but_not_other_experiments(self):
        files = {p.relative_to(SRC_ROOT).as_posix() for p in
                 import_closure(["repro.experiments.fig02_fairness"])}
        assert "repro/sim/engine.py" in files
        assert "repro/sim/link.py" in files
        assert "repro/udt/core.py" in files
        assert "repro/experiments/fig09_losslist.py" not in files

    def test_source_change_invalidates(self, monkeypatch):
        """A changed content hash for any closure file changes the digest."""
        import repro.runner.digest as digest_mod

        base, files = experiment_digest("fig02", SCALE)
        target = next(iter(sorted(files)))
        real = digest_mod.file_sha256

        def tweaked(path):
            h = real(path)
            if path.relative_to(SRC_ROOT).as_posix() == target:
                return h[::-1]
            return h

        monkeypatch.setattr(digest_mod, "file_sha256", tweaked)
        changed, _ = experiment_digest("fig02", SCALE)
        assert changed != base


class TestCache:
    DIGEST = "ab" * 32

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(self.DIGEST, {"exp_id": "x", "seconds": 1.5, "result": {"rows": []}})
        entry = cache.load(self.DIGEST)
        assert entry is not None
        assert entry["exp_id"] == "x"
        assert entry["digest"] == self.DIGEST
        assert self.DIGEST in cache

    def test_miss(self, tmp_path):
        assert ResultCache(tmp_path).load("cd" * 32) is None

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(self.DIGEST, {"result": {}})
        cache.path(self.DIGEST).write_text("{not json")
        assert cache.load(self.DIGEST) is None
        assert cache.corrupt_dropped == 1
        assert not cache.path(self.DIGEST).exists()
        # and a fresh store heals it
        cache.store(self.DIGEST, {"result": {"ok": True}})
        assert cache.load(self.DIGEST)["result"] == {"ok": True}

    def test_schema_or_digest_mismatch_is_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store(self.DIGEST, {"result": {}})
        entry = json.loads(path.read_text())
        entry["digest"] = "ef" * 32
        path.write_text(json.dumps(entry))
        assert cache.load(self.DIGEST) is None
        assert cache.corrupt_dropped == 1

    def test_rejects_non_digest_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path("../../etc/passwd")


class TestSelect:
    def test_all(self):
        selector, ids = select_experiments(None)
        assert selector == "all"
        assert "fig02" in ids and len(ids) >= 25

    def test_subset_preserves_order_and_dedups(self):
        selector, ids = select_experiments(["fig09", "table1", "fig09"])
        assert selector == "fig09,table1"
        assert ids == ["fig09", "table1"]

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            select_experiments(["not-an-experiment"])


@pytest.mark.slow
class TestSweepEndToEnd:
    """Subprocess sweeps: cache behaviour and jobs-independence."""

    ONLY = ["table1", "fig09"]

    def test_cold_then_warm_then_jobs_independent(self, tmp_path):
        cache_dir = tmp_path / "cache"
        traces1 = tmp_path / "tr-jobs1"
        traces4 = tmp_path / "tr-jobs4"

        cold = run_sweep(only=self.ONLY, jobs=1, scale=SCALE, cache_dir=cache_dir)
        assert cold.ok and cold.executed == self.ONLY and not cold.cached

        warm = run_sweep(only=self.ONLY, jobs=1, scale=SCALE, cache_dir=cache_dir)
        assert warm.ok and warm.cached == self.ONLY and not warm.executed
        assert warm.digests == cold.digests

        # Trace runs execute (never served from cache) so traces exist to
        # compare; jobs must not affect a single byte of them.
        t1 = run_sweep(
            only=self.ONLY, jobs=1, scale=SCALE, cache_dir=cache_dir,
            trace_dir=traces1,
        )
        t4 = run_sweep(
            only=self.ONLY, jobs=4, scale=SCALE, cache_dir=cache_dir,
            trace_dir=traces4,
        )
        assert t1.ok and t4.ok
        for exp_id in self.ONLY:
            a = (traces1 / f"{exp_id}.jsonl").read_bytes()
            b = (traces4 / f"{exp_id}.jsonl").read_bytes()
            assert a == b, f"{exp_id}: trace differs between jobs=1 and jobs=4"

        # Cached results equal fresh results, modulo timing metadata.
        cache = ResultCache(cache_dir)
        for exp_id in self.ONLY:
            entry = cache.load(t4.digests[exp_id])
            assert entry is not None
            assert entry["exp_id"] == exp_id
            assert entry["result"]["rows"], f"{exp_id}: empty result cached"

    def test_fig08_rtrc_packet_trace_jobs_independent_and_compact(self, tmp_path):
        """The PR's acceptance bar: a packet-tier fig08 sweep traced to
        .rtrc is byte-identical across --jobs and a fraction of the
        JSONL size."""
        from repro.obs.store import rtrc_to_jsonl

        kw = dict(only=["fig08"], scale=SCALE, cache_dir=tmp_path / "cache",
                  trace_packets=True, trace_format="rtrc")
        t1 = run_sweep(jobs=1, trace_dir=tmp_path / "tr1", **kw)
        t4 = run_sweep(jobs=4, trace_dir=tmp_path / "tr4", **kw)
        assert t1.ok and t4.ok
        rtrc = tmp_path / "tr1" / "fig08.rtrc"
        assert rtrc.read_bytes() == (tmp_path / "tr4" / "fig08.rtrc").read_bytes()
        back = tmp_path / "fig08.jsonl"
        n = rtrc_to_jsonl(rtrc, back)
        assert n > 100_000  # the packet tier was actually recorded
        assert rtrc.stat().st_size <= 0.25 * back.stat().st_size

    def test_failure_is_reported_not_raised(self, tmp_path, monkeypatch):
        import repro.runner.sweep as sweep_mod

        def broken(*a, **k):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(sweep_mod, "_run_worker", broken)
        report = run_sweep(only=["table1"], jobs=1, scale=SCALE,
                           cache_dir=tmp_path / "c")
        assert not report.ok
        assert "table1" in report.failures


class TestBenchMerge:
    def _report(self, **kw):
        rep = SweepReport(
            selector="fig02", scale=0.05, jobs=2, experiments=["fig02"],
            seconds=3.0, executed=["fig02"],
            digests={"fig02": "aa" * 32}, exp_seconds={"fig02": 2.5},
        )
        for k, v in kw.items():
            setattr(rep, k, v)
        return rep

    def test_merge_preserves_foreign_keys(self, tmp_path):
        bench = tmp_path / "BENCH_runtime.json"
        bench.write_text(json.dumps({
            "schema": 1, "kind": "bench.runtime",
            "runtimes": {"fig09_losslist": {"seconds": 8.2, "test": "x"}},
            "sweeps": {"old|scale=0.3|jobs=1": {"seconds": 1.0}},
            "custom_section": {"keep": "me"},
        }))
        update_bench(self._report(), bench)
        data = json.loads(bench.read_text())
        assert data["custom_section"] == {"keep": "me"}
        assert "old|scale=0.3|jobs=1" in data["sweeps"]
        assert data["runtimes"]["fig09_losslist"]["seconds"] == 8.2
        assert data["runtimes"]["fig02"]["seconds"] == 2.5
        entry = data["sweeps"]["fig02|scale=0.05|jobs=2"]
        assert entry["digests"]["fig02"] == "aa" * 32
        assert entry["per_experiment"] == {"fig02": 2.5}

    def test_gate_passes_on_uniform_slowdown_fails_on_outlier(self, tmp_path):
        def ledger(path, seconds):
            path.write_text(json.dumps({
                "schema": 1, "sweeps": {"all|scale=0.05|jobs=2": {
                    "per_experiment": seconds}},
            }))

        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        ledger(base, {"a": 10.0, "b": 20.0, "c": 30.0})
        # everything 2x slower (slower machine): normalised ratios are 1.0
        ledger(cur, {"a": 20.0, "b": 40.0, "c": 60.0})
        failures, _ = check_regressions(cur, base)
        assert failures == []
        # one experiment 2x slower than its peers: that's a regression
        ledger(cur, {"a": 10.0, "b": 20.0, "c": 60.0})
        failures, _ = check_regressions(cur, base)
        assert len(failures) == 1 and "c" in failures[0]

    def test_gate_fails_when_nothing_comparable(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text("{}")
        cur.write_text("{}")
        failures, _ = check_regressions(cur, base)
        assert failures
