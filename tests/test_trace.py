"""Tests for the tracing module (+ trace-validated protocol behaviour)."""

import io

import pytest

from repro.sim.topology import path_topology
from repro.sim.trace import DEQUEUE, DROP, ENQUEUE, PacketTracer, QueueSampler
from repro.sim.udp import UdpEndpoint
from repro.udt import start_udt_flow


def test_every_packet_enqueued_then_dequeued():
    top = path_topology(10e6, 0.01)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(20):
        top.net.sim.schedule(i * 0.01, a.sendto, i, 1000, b.address)
    top.net.run(until=2.0)
    assert len(tracer.of_kind(ENQUEUE)) == 20
    assert len(tracer.of_kind(DEQUEUE)) == 20
    assert not tracer.drops()


def test_drops_recorded_on_overflow():
    top = path_topology(1e6, 0.01, queue_pkts=4)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(50):
        a.sendto(i, 1000, b.address)
    top.net.run(until=2.0)
    drops = len(tracer.drops())
    accepted = len(tracer.of_kind(ENQUEUE))
    assert accepted + drops == 50  # every packet accounted for
    assert 30 <= drops <= 46  # queue 4 + slots freed during the burst


def test_trace_text_format():
    top = path_topology(10e6, 0.01)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    a.sendto("x", 500, b.address)
    top.net.run(until=1.0)
    buf = io.StringIO()
    n = tracer.write(buf)
    assert n == len(tracer.events)
    line = buf.getvalue().splitlines()[0]
    assert line.startswith("+ ")
    assert str(500 + 28) in line


def test_attach_idempotent():
    top = path_topology(10e6, 0.01)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    a.sendto("x", 500, b.address)
    top.net.run(until=1.0)
    assert len(tracer.of_kind(ENQUEUE)) == 1  # not double-counted


def test_event_limit_respected():
    tracer = PacketTracer(limit=5)
    top = path_topology(10e6, 0.01)
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(50):
        a.sendto(i, 1000, b.address)
    top.net.run(until=2.0)
    assert len(tracer.events) == 5


def test_probe_pair_spacing_on_the_wire():
    """Trace-validated §3.4: pair packets leave the bottleneck
    back-to-back (their dequeue spacing equals the serialisation time,
    not the sending period)."""
    top = path_topology(50e6, 0.02)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    f = start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=3.0)
    # Gather dequeue times of full-size data packets, in order.
    times = [
        e.time for e in tracer.of_kind(DEQUEUE) if e.size >= 1500
    ]
    gaps = [b - a for a, b in zip(times, times[1:])]
    tx_time = 1500 * 8 / 50e6
    # In steady state most gaps ~ the pacing period (>> tx time), but the
    # probe pairs create a population of gaps at exactly the wire rate.
    wire_rate_gaps = [g for g in gaps if g < tx_time * 1.6]
    assert len(wire_rate_gaps) > len(times) / 40  # ~1 of 16 + slack


def test_queue_sampler():
    top = path_topology(5e6, 0.01, queue_pkts=50)
    sampler = QueueSampler(top.net.sim, top.bottleneck, interval=0.01)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(40):
        a.sendto(i, 1000, b.address)
    top.net.run(until=1.0)
    assert sampler.max_occupancy() > 10
    assert 0 < sampler.mean_occupancy() < 50
    with pytest.raises(ValueError):
        QueueSampler(top.net.sim, top.bottleneck, interval=0)


def test_detach_restores_link():
    top = path_topology(10e6, 0.01)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    a.sendto("x", 500, b.address)
    top.net.run(until=0.5)
    seen = len(tracer.events)
    assert seen > 0
    tracer.detach(top.bottleneck)
    assert top.bottleneck.taps == []
    a.sendto("y", 500, b.address)
    top.net.run(until=1.0)
    assert len(tracer.events) == seen  # nothing recorded after detach
    # re-attach works after a detach
    tracer.attach(top.bottleneck)
    a.sendto("z", 500, b.address)
    top.net.run(until=1.5)
    assert len(tracer.events) > seen


def test_tracer_context_manager_detaches_all():
    top = path_topology(10e6, 0.01)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    with PacketTracer() as tracer:
        tracer.attach(top.bottleneck)
        a.sendto("x", 500, b.address)
        top.net.run(until=0.5)
        assert tracer.attached_links == [top.bottleneck]
    assert top.bottleneck.taps == []
    n = len(tracer.events)
    a.sendto("y", 500, b.address)
    top.net.run(until=1.0)
    assert len(tracer.events) == n


def test_detach_all_with_multiple_links():
    top = path_topology(10e6, 0.01)
    links = list(top.net.links.values())
    tracer = PacketTracer()
    for l in links:
        tracer.attach(l)
    tracer.detach()
    assert tracer.attached_links == []
    assert all(l.taps == [] for l in links)


class TestQueueSampler:
    def test_tick_scheduling_count(self):
        top = path_topology(10e6, 0.01)
        sampler = QueueSampler(top.net.sim, top.bottleneck, interval=0.1)
        top.net.run(until=1.05)
        # one sample at t=0 plus one per 0.1 s tick
        assert len(sampler.samples) == 11
        times = [t for t, _, _ in sampler.samples]
        assert times == pytest.approx([i * 0.1 for i in range(11)])

    def test_empty_queue_statistics(self):
        top = path_topology(10e6, 0.01)
        sampler = QueueSampler(top.net.sim, top.bottleneck, interval=0.1)
        top.net.run(until=1.0)
        assert sampler.max_occupancy() == 0
        assert sampler.mean_occupancy() == 0.0

    def test_no_samples_statistics(self):
        top = path_topology(10e6, 0.01)
        sampler = QueueSampler(top.net.sim, top.bottleneck, interval=0.1)
        sampler.samples.clear()
        assert sampler.max_occupancy() == 0
        assert sampler.mean_occupancy() == 0.0

    def test_bursty_queue_seen_by_sampler(self):
        top = path_topology(1e6, 0.01, queue_pkts=100)
        sampler = QueueSampler(top.net.sim, top.bottleneck, interval=0.001)
        a = UdpEndpoint(top.src, 1)
        b = UdpEndpoint(top.dst, 2)
        for i in range(50):  # 50 x 1000B burst into a 1 Mb/s link
            a.sendto(i, 1000, b.address)
        top.net.run(until=0.5)
        assert sampler.max_occupancy() >= 40  # burst parked in the queue
        assert 0 < sampler.mean_occupancy() < sampler.max_occupancy()
        # drains to empty by the end
        assert sampler.samples[-1][1] == 0

    def test_stop_cancels_tick(self):
        top = path_topology(10e6, 0.01)
        sampler = QueueSampler(top.net.sim, top.bottleneck, interval=0.1)
        top.net.run(until=0.35)
        sampler.stop()
        n = len(sampler.samples)
        top.net.run(until=2.0)
        assert len(sampler.samples) == n
        sampler.stop()  # idempotent
