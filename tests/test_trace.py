"""Tests for the tracing module (+ trace-validated protocol behaviour)."""

import io

import pytest

from repro.sim.topology import path_topology
from repro.sim.trace import DEQUEUE, DROP, ENQUEUE, PacketTracer, QueueSampler
from repro.sim.udp import UdpEndpoint
from repro.udt import start_udt_flow


def test_every_packet_enqueued_then_dequeued():
    top = path_topology(10e6, 0.01)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(20):
        top.net.sim.schedule(i * 0.01, a.sendto, i, 1000, b.address)
    top.net.run(until=2.0)
    assert len(tracer.of_kind(ENQUEUE)) == 20
    assert len(tracer.of_kind(DEQUEUE)) == 20
    assert not tracer.drops()


def test_drops_recorded_on_overflow():
    top = path_topology(1e6, 0.01, queue_pkts=4)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(50):
        a.sendto(i, 1000, b.address)
    top.net.run(until=2.0)
    drops = len(tracer.drops())
    accepted = len(tracer.of_kind(ENQUEUE))
    assert accepted + drops == 50  # every packet accounted for
    assert 30 <= drops <= 46  # queue 4 + slots freed during the burst


def test_trace_text_format():
    top = path_topology(10e6, 0.01)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    a.sendto("x", 500, b.address)
    top.net.run(until=1.0)
    buf = io.StringIO()
    n = tracer.write(buf)
    assert n == len(tracer.events)
    line = buf.getvalue().splitlines()[0]
    assert line.startswith("+ ")
    assert str(500 + 28) in line


def test_attach_idempotent():
    top = path_topology(10e6, 0.01)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    a.sendto("x", 500, b.address)
    top.net.run(until=1.0)
    assert len(tracer.of_kind(ENQUEUE)) == 1  # not double-counted


def test_event_limit_respected():
    tracer = PacketTracer(limit=5)
    top = path_topology(10e6, 0.01)
    tracer.attach(top.bottleneck)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(50):
        a.sendto(i, 1000, b.address)
    top.net.run(until=2.0)
    assert len(tracer.events) == 5


def test_probe_pair_spacing_on_the_wire():
    """Trace-validated §3.4: pair packets leave the bottleneck
    back-to-back (their dequeue spacing equals the serialisation time,
    not the sending period)."""
    top = path_topology(50e6, 0.02)
    tracer = PacketTracer()
    tracer.attach(top.bottleneck)
    f = start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=3.0)
    # Gather dequeue times of full-size data packets, in order.
    times = [
        e.time for e in tracer.of_kind(DEQUEUE) if e.size >= 1500
    ]
    gaps = [b - a for a, b in zip(times, times[1:])]
    tx_time = 1500 * 8 / 50e6
    # In steady state most gaps ~ the pacing period (>> tx time), but the
    # probe pairs create a population of gaps at exactly the wire rate.
    wire_rate_gaps = [g for g in gaps if g < tx_time * 1.6]
    assert len(wire_rate_gaps) > len(times) / 40  # ~1 of 16 + slack


def test_queue_sampler():
    top = path_topology(5e6, 0.01, queue_pkts=50)
    sampler = QueueSampler(top.net.sim, top.bottleneck, interval=0.01)
    a = UdpEndpoint(top.src, 1)
    b = UdpEndpoint(top.dst, 2)
    for i in range(40):
        a.sendto(i, 1000, b.address)
    top.net.run(until=1.0)
    assert sampler.max_occupancy() > 10
    assert 0 < sampler.mean_occupancy() < 50
    with pytest.raises(ValueError):
        QueueSampler(top.net.sim, top.bottleneck, interval=0)
