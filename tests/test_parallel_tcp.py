"""Tests for the §2.2 parallel-TCP striping baseline."""

import pytest

from repro.apps.parallel_tcp import ParallelTcpTransfer
from repro.sim.topology import path_topology


def test_stripes_complete_a_finite_transfer():
    top = path_topology(50e6, 0.02)
    p = ParallelTcpTransfer(top.net, top.src, top.dst, n_streams=4, nbytes=2_000_000)
    top.net.run(until=20.0)
    assert p.done
    assert p.finish_time is not None
    # striping rounds each stream up to a whole share
    assert p.delivered_bytes >= 2_000_000


def test_striping_recovers_lossy_high_bdp_goodput():
    """§2.2: N parallel flows regain what one TCP cannot use."""

    def goodput(n):
        top = path_topology(200e6, 0.1, loss_rate=1e-4, seed=2)
        p = ParallelTcpTransfer(top.net, top.src, top.dst, n_streams=n)
        top.net.run(until=25.0)
        return p.throughput_bps(12, 25)

    assert goodput(8) > 2.5 * goodput(1)


def test_aggregate_throughput_sums_streams():
    top = path_topology(50e6, 0.02)
    p = ParallelTcpTransfer(top.net, top.src, top.dst, n_streams=2)
    top.net.run(until=10.0)
    total = p.throughput_bps(5, 10)
    parts = sum(s.throughput_bps(5, 10) for s in p.streams)
    assert total == pytest.approx(parts)
    assert total > 40e6


def test_requires_at_least_one_stream():
    top = path_topology(50e6, 0.02)
    with pytest.raises(ValueError):
        ParallelTcpTransfer(top.net, top.src, top.dst, n_streams=0)


def test_unfair_to_single_tcp():
    """§2.2: 'parallel TCP does not address fairness issues' — N stripes
    take roughly N shares from a competing standard TCP."""
    from repro.sim.topology import dumbbell
    from repro.tcp import start_tcp_flow

    d = dumbbell(2, 100e6, 0.02, seed=3)
    p = ParallelTcpTransfer(d.net, d.sources[0], d.sinks[0], n_streams=8)
    victim = start_tcp_flow(d.net, d.sources[1], d.sinks[1], flow_id="victim")
    d.net.run(until=20.0)
    assert p.throughput_bps(10, 20) > 3 * victim.throughput_bps(10, 20)
