"""Tests for the §2.3/§6 TCP-control-channel model."""

import pytest

from repro.sabul.control_channel import (
    ReliableInOrderChannel,
    attach_tcp_control_channel,
)
from repro.sim.engine import Simulator
from repro.sim.topology import dumbbell, path_topology
from repro.udt import start_udt_flow


class TestChannel:
    def test_in_order_delivery(self):
        sim = Simulator()
        got = []
        ch = ReliableInOrderChannel(sim, got.append, delay=0.01, loss_probability=lambda: 0.0)
        for i in range(5):
            ch.send(i)
        sim.run(until=1.0)
        assert got == [0, 1, 2, 3, 4]

    def test_loss_delays_everything_behind(self):
        sim = Simulator(seed=1)
        got = []
        lose_first = {"armed": True}

        def loss():
            if lose_first["armed"]:
                lose_first["armed"] = False
                return 1.0
            return 0.0

        ch = ReliableInOrderChannel(
            sim, lambda m: got.append((sim.now, m)), delay=0.01,
            loss_probability=loss, rto=0.2,
        )
        ch.send("a")
        ch.send("b")
        sim.run(until=1.0)
        # both messages waited out the RTO (head-of-line blocking)
        assert got[0][0] == pytest.approx(0.21)
        assert got[1][0] == pytest.approx(0.21)
        assert [m for _, m in got] == ["a", "b"]
        assert ch.retransmissions == 1

    def test_stats(self):
        sim = Simulator()
        ch = ReliableInOrderChannel(sim, lambda m: None, 0.01, lambda: 0.0)
        ch.send("x")
        sim.run(until=0.1)
        assert ch.messages_sent == 1


class TestAblation:
    def test_transfer_still_completes_over_tcp_control(self):
        top = path_topology(20e6, 0.02)
        f = start_udt_flow(top.net, top.src, top.dst, nbytes=400_000)
        attach_tcp_control_channel(f)
        top.net.run(until=30.0)
        assert f.done
        assert f.delivered_bytes == 400_000

    def test_tcp_control_hurts_under_congestion(self):
        """§6: the UDP-control protocol recovers congestion faster than
        the same protocol with SABUL-style TCP control."""

        def run(with_tcp_control):
            d = dumbbell(2, 50e6, 0.05, queue_pkts=60, seed=9)
            f1 = start_udt_flow(d.net, d.sources[0], d.sinks[0], flow_id="a")
            f2 = start_udt_flow(d.net, d.sources[1], d.sinks[1], flow_id="b")
            chans = None
            if with_tcp_control:
                chans = attach_tcp_control_channel(f1)
                attach_tcp_control_channel(f2)
            d.net.run(until=25.0)
            total = f1.throughput_bps(10, 25) + f2.throughput_bps(10, 25)
            return total, chans

        udp_total, _ = run(False)
        tcp_total, chans = run(True)
        # Control-channel HOL blocking costs efficiency under congestion
        # (or at the very least never helps).
        assert tcp_total <= udp_total * 1.05
        # The channel actually exercised its retransmission path.
        assert chans["rcv->snd"].messages_sent > 0
