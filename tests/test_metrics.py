"""Unit + property tests for the evaluation metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    friendliness_index,
    jain_index,
    rtt_fairness_ratio,
    stability_index,
)


class TestJain:
    def test_equal_shares_ideal(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog_worst(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_known_value(self):
        # classic example: (1+2+3)^2 / (3*(1+4+9)) = 36/42
        assert jain_index([1, 2, 3]) == pytest.approx(36 / 42)

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))

    def test_all_zero(self):
        assert jain_index([0, 0]) == 1.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1, -1])

    @given(st.lists(st.floats(0.001, 1000), min_size=1, max_size=50))
    def test_bounds(self, xs):
        j = jain_index(xs)
        assert 1 / len(xs) - 1e-9 <= j <= 1 + 1e-9


class TestStability:
    def test_constant_series_ideal(self):
        assert stability_index([[5, 5, 5], [2, 2, 2]]) == 0.0

    def test_oscillation_penalised(self):
        smooth = stability_index([[5, 5.1, 4.9, 5.0]])
        wild = stability_index([[1, 9, 1, 9]])
        assert wild > smooth

    def test_normalised_by_mean(self):
        # same relative oscillation at different scales -> same index
        a = stability_index([[1, 2, 1, 2]])
        b = stability_index([[10, 20, 10, 20]])
        assert a == pytest.approx(b)

    def test_starved_flow_skipped(self):
        assert stability_index([[0, 0, 0]]) == 0.0

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            stability_index([[1]])
        with pytest.raises(ValueError):
            stability_index([])


class TestFriendliness:
    def test_ideal_share(self):
        # 5 TCP each get 10 with UDT; alone, 10 flows each get 10.
        t = friendliness_index([10] * 5, [10] * 10, n_udt=5)
        assert t == pytest.approx(1.0)

    def test_udt_overruns(self):
        t = friendliness_index([2] * 5, [10] * 10, n_udt=5)
        assert t < 1.0

    def test_udt_too_friendly(self):
        t = friendliness_index([20] * 5, [10] * 10, n_udt=5)
        assert t > 1.0

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            friendliness_index([10] * 5, [10] * 5, n_udt=5)


class TestRttFairness:
    def test_equal_is_one(self):
        assert rtt_fairness_ratio(100.0, 100.0) == 1.0

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            rtt_fairness_ratio(1.0, 0.0)
