"""Unit tests for the congestion-control formulas and state machine."""

import pytest

from repro.udt.cc import (
    DECREASE_FACTOR,
    FixedAimdCC,
    LossEvent,
    UdtNativeCC,
    increase_param,
)
from repro.udt.params import UdtConfig


class FakeCtx:
    def __init__(self):
        self.t = 0.0
        self.rtt = 0.1
        self.recv_rate = 0.0
        self.bandwidth = 0.0
        self.max_seq_sent = 0

    def now(self):
        return self.t


class TestIncreaseParam:
    """Formula (1) must reproduce the paper's Table 1 exactly (MSS=1500)."""

    @pytest.mark.parametrize(
        "b_mbps,expected",
        [
            (10_000, 10.0),
            (1_500, 10.0),
            (1_000, 1.0),
            (500, 1.0),
            (101, 1.0),
            (100, 0.1),
            (50, 0.1),
            (10, 0.01),
            (5, 0.01),
            (1, 0.001),
            (0.5, 0.001),
            (0.1, 1 / 1500),  # floor: 0.00067 packets
            (0.01, 1 / 1500),
        ],
    )
    def test_table1(self, b_mbps, expected):
        assert increase_param(b_mbps * 1e6, 1500) == pytest.approx(expected)

    def test_floor_is_one_packet_per_mss(self):
        assert increase_param(0.0, 1500) == pytest.approx(1 / 1500)
        assert increase_param(-5.0, 1500) == pytest.approx(1 / 1500)

    def test_mss_correction(self):
        # §3.3: "corrected by the ratio of 1500/MSS"
        assert increase_param(1e9, 750) == pytest.approx(2.0)
        assert increase_param(1e9, 3000) == pytest.approx(0.5)


def make_cc(**cfg):
    config = UdtConfig(**cfg)
    cc = UdtNativeCC(config)
    ctx = FakeCtx()
    cc.init(ctx)
    return cc, ctx


class TestSlowStart:
    def test_window_grows_with_acks(self):
        cc, ctx = make_cc()
        cc.max_cwnd = 1000.0
        w0 = cc.window
        ctx.t = 0.02
        cc.on_ack(100)
        assert cc.window == w0 + 100
        assert cc.slow_start

    def test_exit_on_window_cap(self):
        cc, ctx = make_cc()
        cc.max_cwnd = 64.0
        ctx.recv_rate = 5000.0
        ctx.t = 0.02
        cc.on_ack(100)
        assert not cc.slow_start
        assert cc.period == pytest.approx(1 / 5000.0)

    def test_exit_on_loss(self):
        cc, ctx = make_cc()
        ctx.recv_rate = 1000.0
        ctx.max_seq_sent = 500
        cc.on_loss(LossEvent([(10, 20)], biggest_seq=20, lost_packets=11))
        assert not cc.slow_start

    def test_rate_limited_to_syn(self):
        cc, ctx = make_cc()
        cc.max_cwnd = 10000.0
        ctx.t = 0.02
        cc.on_ack(100)
        w = cc.window
        ctx.t = 0.025  # less than one SYN later
        cc.on_ack(200)
        assert cc.window == w


class TestAimd:
    def _post_ss(self, bandwidth_pps=83_333):
        cc, ctx = make_cc()
        ctx.recv_rate = 8000.0
        ctx.bandwidth = bandwidth_pps
        cc.max_cwnd = 64
        ctx.t = 0.02
        cc.on_ack(100)  # exits slow start
        assert not cc.slow_start
        return cc, ctx

    def test_increase_speeds_up_sending(self):
        cc, ctx = self._post_ss()
        p0 = cc.period
        ctx.t += 0.02
        cc.on_ack(200)
        assert cc.period < p0

    def test_increase_magnitude_formula2(self):
        cc, ctx = self._post_ss()
        p0 = cc.period
        # compute expected: B = L - C with L=83333 pkts/s
        cur = 1.0 / p0
        avail_bps = (ctx.bandwidth - cur) * 1500 * 8
        inc = increase_param(avail_bps, 1500)
        ctx.t += 0.02
        cc.on_ack(200)
        expected = (p0 * 0.01) / (p0 * inc + 0.01)
        assert cc.period == pytest.approx(expected)

    def test_decrease_by_one_ninth(self):
        cc, ctx = self._post_ss()
        p0 = cc.period
        ctx.max_seq_sent = 1000
        cc.on_loss(LossEvent([(500, 510)], biggest_seq=510, lost_packets=11))
        assert cc.period == pytest.approx(p0 * DECREASE_FACTOR)
        assert cc.freeze_requested

    def test_stale_nak_does_not_decrease_again(self):
        cc, ctx = self._post_ss()
        ctx.max_seq_sent = 1000
        cc.on_loss(LossEvent([(500, 510)], biggest_seq=510, lost_packets=11))
        p1 = cc.period
        cc.freeze_requested = False
        # a second NAK about *older* packets (<= last_dec_seq=1000)
        cc.on_loss(LossEvent([(600, 605)], biggest_seq=605, lost_packets=6))
        assert cc.period == p1
        assert not cc.freeze_requested

    def test_fresh_nak_after_decrease_decreases_again(self):
        cc, ctx = self._post_ss()
        ctx.max_seq_sent = 1000
        cc.on_loss(LossEvent([(500, 510)], biggest_seq=510, lost_packets=11))
        p1 = cc.period
        ctx.max_seq_sent = 2000
        cc.on_loss(LossEvent([(1500, 1510)], biggest_seq=1510, lost_packets=11))
        assert cc.period == pytest.approx(p1 * DECREASE_FACTOR)

    def test_recovery_clamped_to_ninth_of_capacity(self):
        # After a decrease, B = min(L/9, L - C) (§3.4).
        cc, ctx = self._post_ss(bandwidth_pps=833_333)  # 10 Gb/s
        ctx.max_seq_sent = 1000
        cc.on_loss(LossEvent([(1, 2)], biggest_seq=2, lost_packets=2))
        p_loss = cc.period
        ctx.t += 0.02
        cc.on_ack(300)
        # clamp: avail = L/9 = 92592 pkts/s = 1.1 Gb/s -> inc = 10
        expected = (p_loss * 0.01) / (p_loss * 10.0 + 0.01)
        assert cc.period == pytest.approx(expected)

    def test_window_tracks_delivery_rate(self):
        cc, ctx = self._post_ss()
        ctx.recv_rate = 8000.0
        ctx.rtt = 0.1
        ctx.t += 0.02
        cc.on_ack(300)
        assert cc.window == pytest.approx(8000 * 0.11 + 16)

    def test_timeout_backs_off(self):
        cc, ctx = self._post_ss()
        p0 = cc.period
        cc.on_timeout()
        assert cc.period == pytest.approx(p0 * DECREASE_FACTOR)

    def test_unknown_bandwidth_falls_back_to_unit_increase(self):
        cc, ctx = self._post_ss(bandwidth_pps=0)
        p0 = cc.period
        ctx.t += 0.02
        cc.on_ack(300)
        expected = (p0 * 0.01) / (p0 * 1.0 + 0.01)
        assert cc.period == pytest.approx(expected)


class TestRecoveryTime:
    def test_ninety_percent_recovery_in_7_5_seconds(self):
        """§3.3's worked example: ramping to 90% of a 1 Gb/s link takes
        ~750 SYN = 7.5 s once the increase parameter is in the 1-packet
        band."""
        cfg = UdtConfig()
        cc = UdtNativeCC(cfg)
        ctx = FakeCtx()
        cc.init(ctx)
        capacity = 1e9 / (1500 * 8)  # packets/s
        ctx.bandwidth = capacity
        ctx.recv_rate = 100.0
        cc.max_cwnd = 1.0  # force immediate slow-start exit
        ctx.t = 0.02
        cc.on_ack(1)
        cc.period = 1.0  # ~0 rate: recover from scratch
        cc.last_dec_period = 2.0  # pretend we are past the last decrease
        t = ctx.t
        syn_count = 0
        while 1.0 / cc.period < 0.9 * capacity and syn_count < 5000:
            t += cfg.syn
            ctx.t = t
            cc.on_ack(syn_count + 2)
            syn_count += 1
        # paper: 750 SYN = 7.5 s (two-band ramp 0.1 -> 1 packets/SYN)
        assert 600 <= syn_count <= 900


class TestFixedAimd:
    def test_constant_increase_ignores_bandwidth(self):
        cfg = UdtConfig()
        cc = FixedAimdCC(cfg, inc_packets=1.0)
        ctx = FakeCtx()
        ctx.bandwidth = 1e9  # enormous — must not matter
        ctx.recv_rate = 1000.0
        cc.init(ctx)
        cc.max_cwnd = 8
        ctx.t = 0.02
        cc.on_ack(50)
        p0 = cc.period
        ctx.t += 0.02
        cc.on_ack(100)
        expected = (p0 * 0.01) / (p0 * 1.0 + 0.01)
        assert cc.period == pytest.approx(expected)
