"""Tests for TCP-family congestion controllers over UDT (CCC samples)."""

import pytest

from repro.sim.topology import dumbbell, path_topology
from repro.tcp.responses import (
    BicResponse,
    HighSpeedResponse,
    Response,
    ScalableResponse,
)
from repro.udt import UdtConfig
from repro.udt.cc import LossEvent
from repro.udt.cc_tcp import TcpOverUdtCC, ctcp, make_cc_factory
from repro.udt.sim_adapter import UdtFlow


class Ctx:
    def __init__(self):
        self.t = 0.0
        self.rtt = 0.05
        self.recv_rate = 0.0
        self.bandwidth = 0.0
        self.max_seq_sent = 0

    def now(self):
        return self.t


class TestController:
    def _cc(self, response=None):
        cc = TcpOverUdtCC(UdtConfig(), response)
        ctx = Ctx()
        cc.init(ctx)
        cc.max_cwnd = 10_000.0
        return cc, ctx

    def test_pure_window_control(self):
        cc, _ = self._cc()
        assert cc.period == 0.0  # never paces; ACK clocking only

    def test_slow_start_doubles(self):
        cc, ctx = self._cc()
        cc.on_ack(2)
        cc.on_ack(6)
        assert cc.window == pytest.approx(2 + 6)
        assert cc.in_slow_start

    def test_loss_halves_and_exits_slow_start(self):
        cc, ctx = self._cc()
        cc.on_ack(100)
        ctx.max_seq_sent = 150
        cc.on_loss(LossEvent([(50, 60)], biggest_seq=60, lost_packets=11))
        assert cc.ssthresh == pytest.approx(cc.window)
        assert not cc.in_slow_start

    def test_one_decrease_per_epoch(self):
        cc, ctx = self._cc()
        cc.on_ack(100)
        ctx.max_seq_sent = 150
        cc.on_loss(LossEvent([(50, 60)], biggest_seq=60, lost_packets=11))
        w = cc.window
        cc.on_loss(LossEvent([(70, 80)], biggest_seq=80, lost_packets=11))
        assert cc.window == w  # still the same epoch

    def test_congestion_avoidance_linear(self):
        cc, ctx = self._cc()
        cc.ssthresh = 10.0
        cc.window = 10.0
        cc.on_ack(10)
        w = cc.window
        cc.on_ack(20)  # 10 acked packets -> ~ +1 segment total
        assert cc.window == pytest.approx(w + 1.0, rel=0.1)

    def test_scalable_response_plugs_in(self):
        cc, ctx = self._cc(ScalableResponse())
        cc.ssthresh = 100.0
        cc.window = 100.0
        cc.on_ack(50)
        w = cc.window
        cc.on_ack(150)  # 100 acked * 0.01 = +1
        assert cc.window == pytest.approx(w + 1.0, rel=0.1)

    def test_timeout_resets(self):
        cc, _ = self._cc()
        cc.window = 500.0
        cc.on_timeout()
        assert cc.window == 2.0
        assert cc.ssthresh == 250.0


class TestOverUdtEndToEnd:
    def test_ctcp_fills_low_bdp_link(self):
        top = path_topology(20e6, 0.02)
        f = UdtFlow(top.net, top.src, top.dst, cc_factory=ctcp)
        top.net.run(until=10.0)
        assert f.throughput_bps(5, 10) > 15e6

    @pytest.mark.parametrize(
        "resp", [Response, HighSpeedResponse, ScalableResponse, BicResponse]
    )
    def test_variants_transfer_exactly(self, resp):
        top = path_topology(20e6, 0.02, loss_rate=0.002)
        f = UdtFlow(
            top.net, top.src, top.dst,
            cc_factory=make_cc_factory(resp), nbytes=500_000,
        )
        top.net.run(until=60.0)
        assert f.done
        assert f.delivered_bytes == 500_000

    def test_ctcp_inherits_rtt_bias_native_udt_avoids(self):
        """The same framework, two controllers: the windowed one shows
        TCP's RTT bias, the native rate-based one does not (§3.8)."""
        from repro.sim.topology import join_topology

        def ratio(cc_factory):
            j = join_topology(rate_bps=100e6, rtt_a=0.1, rtt_b=0.01,
                              queue_pkts=100, seed=3)
            kw = {} if cc_factory is None else {"cc_factory": cc_factory}
            fa = UdtFlow(j.net, j.src_a, j.sink, flow_id="long", **kw)
            fb = UdtFlow(j.net, j.src_b, j.sink, flow_id="short", **kw)
            j.net.run(until=30.0)
            return fa.throughput_bps(10, 30) / max(fb.throughput_bps(10, 30), 1)

        assert ratio(None) > 2.0 * ratio(ctcp)
