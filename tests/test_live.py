"""Integration tests for the real-UDP loopback runtime."""

import os
import socket
import threading
import time

import pytest

from repro.live import LiveUdtEndpoint, SpinClock, loopback_transfer, wait_until
from repro.udt import UdtConfig


class TestSpinClock:
    def test_wait_until_precision(self):
        clock = SpinClock()
        target = clock.now() + 0.01
        clock.wait_until(target)
        overshoot = clock.now() - target
        assert 0 <= overshoot < 0.005  # sub-ms precision, generous CI margin

    def test_wait_until_past_returns_immediately(self):
        t0 = time.perf_counter()
        wait_until(t0 - 1.0)
        assert time.perf_counter() - t0 < 0.01


class TestLoopback:
    def test_small_transfer_intact(self):
        payload = os.urandom(100_000)
        stats = loopback_transfer(payload)
        assert stats["bytes"] == len(payload)
        assert stats["throughput_bps"] > 1e6

    def test_multi_megabyte_transfer(self):
        payload = os.urandom(1_500_000)
        stats = loopback_transfer(payload)
        assert stats["bytes"] == len(payload)

    def test_handshake_timeout_when_no_server(self):
        client = LiveUdtEndpoint(("127.0.0.1", 0))
        try:
            # A bound but silent UDP socket: never answers the handshake.
            silent = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            silent.bind(("127.0.0.1", 0))
            with pytest.raises(TimeoutError):
                client.connect(silent.getsockname(), timeout=1.0)
            silent.close()
        finally:
            client.close()

    def test_bidirectional_endpoints_close_cleanly(self):
        server = LiveUdtEndpoint(("127.0.0.1", 0))
        client = LiveUdtEndpoint(("127.0.0.1", 0))
        try:
            server.listen()
            client.connect(server.local_addr)
            assert client.connected and server.connected
        finally:
            client.close()
            server.close()
        assert client.core.closed

    def test_recv_exactly_blocks_until_complete(self):
        server = LiveUdtEndpoint(("127.0.0.1", 0))
        client = LiveUdtEndpoint(("127.0.0.1", 0))
        try:
            server.listen()
            client.connect(server.local_addr)
            payload = os.urandom(300_000)

            def send_later():
                time.sleep(0.1)
                client.send(payload)

            t = threading.Thread(target=send_later)
            t.start()
            got = server.recv_exactly(len(payload), timeout=15.0)
            t.join()
            assert got == payload
        finally:
            client.close()
            server.close()

    def test_recv_timeout_reports_progress(self):
        server = LiveUdtEndpoint(("127.0.0.1", 0))
        try:
            with pytest.raises(TimeoutError):
                server.recv_exactly(10, timeout=0.2)
        finally:
            server.close()

    def test_sendfile_recvfile_roundtrip(self, tmp_path):
        src = tmp_path / "in.bin"
        dst = tmp_path / "out.bin"
        payload = os.urandom(500_000)
        src.write_bytes(payload)
        server = LiveUdtEndpoint(("127.0.0.1", 0))
        client = LiveUdtEndpoint(("127.0.0.1", 0))
        try:
            server.listen()
            client.connect(server.local_addr)
            t = threading.Thread(
                target=lambda: client.send_file(str(src))
            )
            t.start()
            server.recv_file(str(dst), len(payload), timeout=30.0)
            t.join()
            assert dst.read_bytes() == payload
        finally:
            client.close()
            server.close()
