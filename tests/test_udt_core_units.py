"""Unit tests driving the sans-IO UdtCore directly (no simulator).

A hand-rolled scheduler steps virtual time manually, and transmitted
messages are captured in lists — exactly how a third harness would embed
the core, which is the point of the sans-IO design.
"""

import heapq
import itertools

import pytest

from repro.udt import packets as P
from repro.udt.core import UdtCore
from repro.udt.params import UdtConfig


class ManualScheduler:
    def __init__(self):
        self.t = 0.0
        self._heap = []
        self._counter = itertools.count()

    def now(self):
        return self.t

    def call_at(self, when, fn):
        entry = [when, next(self._counter), fn, False]
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, handle):
        handle[3] = True

    def advance(self, until):
        while self._heap and self._heap[0][0] <= until:
            when, _, fn, cancelled = heapq.heappop(self._heap)
            if cancelled:
                continue
            self.t = when
            fn()
        self.t = until


def make_pair(config=None, loss=None):
    """Two cores wired back-to-back through in-memory 'wires'."""
    cfg = config if config is not None else UdtConfig()
    sched = ManualScheduler()
    wires = {"a->b": [], "b->a": []}

    a = UdtCore(cfg, sched, lambda m, s: wires["a->b"].append((m, s)), name="a")
    b = UdtCore(cfg, sched, lambda m, s: wires["b->a"].append((m, s)), name="b")

    def pump():
        moved = True
        while moved:
            moved = False
            while wires["a->b"]:
                m, s = wires["a->b"].pop(0)
                if loss is None or not loss(m):
                    b.on_datagram(m, s)
                moved = True
            while wires["b->a"]:
                m, s = wires["b->a"].pop(0)
                if loss is None or not loss(m):
                    a.on_datagram(m, s)
                moved = True

    return sched, a, b, pump


def step(sched, pump, until, dt=0.001):
    t = sched.t
    while t < until:
        t = min(t + dt, until)
        sched.advance(t)
        pump()


class TestHandshake:
    def test_connect_establishes(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        assert a.connected and b.connected

    def test_duplicate_handshake_is_idempotent(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        hs = P.Handshake(init_seq=a.init_seq, mss=1500, flow_window=64, req_type=1)
        b.on_datagram(hs, hs.wire_size)  # replayed request
        pump()
        assert a.connected and b.connected
        assert b.rcv_buffer.next_expected == a.init_seq or b.rcv_buffer.delivered_packets >= 0

    def test_flow_window_adopted_from_peer(self):
        cfg = UdtConfig(rcv_buffer_pkts=77)
        sched, a, b, pump = make_pair(cfg)
        b.listen()
        a.connect()
        pump()
        assert a.flow_window == 77.0
        assert a.cc.max_cwnd == 77.0


class TestAckCadence:
    def test_one_ack_per_syn_not_per_packet(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        a.send(50 * 1456)
        step(sched, pump, 0.25)
        assert b.stats.acks_sent <= 30  # ~1 per SYN (25 SYNs elapsed)
        assert a.stats.data_pkts_sent >= 50

    def test_no_acks_when_idle(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        a.send(5 * 1456)
        step(sched, pump, 0.2)
        sent_after_transfer = b.stats.acks_sent
        step(sched, pump, 1.0)
        # idle connection: at most a couple of trailing ACKs
        assert b.stats.acks_sent - sent_after_transfer <= 2

    def test_ack2_closes_rtt_loop(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        a.send(20 * 1456)
        step(sched, pump, 0.5)
        assert a.stats.ack2_sent > 0
        assert b.rtt_est._initialized


class TestLossRecovery:
    def test_hole_triggers_immediate_nak(self):
        drop = {"armed": True, "dropped": 0}

        def loss(m):
            if m.type_name == "data" and m.seq == 5 and drop["armed"]:
                drop["armed"] = False
                drop["dropped"] += 1
                return True
            return False

        sched, a, b, pump = make_pair(loss=loss)
        b.listen()
        a.connect()
        pump()
        a.send(20 * 1456)
        step(sched, pump, 0.5)
        assert drop["dropped"] == 1
        assert b.stats.naks_sent >= 1
        assert a.stats.retransmitted_pkts >= 1
        assert b.rcv_buffer.delivered_packets == 20

    def test_freeze_after_fresh_loss(self):
        def loss(m):
            return m.type_name == "data" and m.seq in (5, 6, 7) and m.retransmitted is False

        sched, a, b, pump = make_pair(loss=loss)
        b.listen()
        a.connect()
        pump()
        a.send(30 * 1456)
        step(sched, pump, 0.5)
        assert a.stats.freezes >= 1

    def test_loss_event_sizes_recorded(self):
        def loss(m):
            return m.type_name == "data" and 5 <= m.seq <= 9 and not m.retransmitted

        sched, a, b, pump = make_pair(loss=loss)
        b.listen()
        a.connect()
        pump()
        a.send(30 * 1456)
        step(sched, pump, 0.5)
        assert 5 in b.loss_events


class TestProbePairs:
    def test_pair_sent_back_to_back(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        # Instrument transmit times of seq 16 and 17 (a probe pair).
        times = {}
        original = a._transmit

        def spy(m, s):
            if m.type_name == "data" and m.seq in (16, 17):
                times[m.seq] = sched.now()
            original(m, s)

        a._transmit = spy
        a.send(40 * 1456)
        step(sched, pump, 1.0)
        assert 16 in times and 17 in times
        assert times[17] - times[16] < a.cc.period / 2  # back-to-back

    def test_probe_pairs_recorded_at_receiver(self):
        # The manual wires deliver with zero transit time, so a capacity
        # *estimate* is undefined here (pair interval 0); what the core
        # must guarantee is that every probe pair reaches the recorder.
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        a.send(64 * 1456)
        step(sched, pump, 1.0)
        assert len(b.probes.window) >= 2


class TestBufferLimits:
    def test_buffer_drop_counted_for_far_future_seq(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        far = P.DataPacket(seq=a.init_seq + 100_000, size=100)
        b.on_datagram(far, far.wire_size)
        assert b.stats.buffer_drops == 1

    def test_send_returns_accepted_bytes_only(self):
        cfg = UdtConfig(snd_buffer_pkts=4)
        sched, a, b, pump = make_pair(cfg)
        b.listen()
        a.connect()
        pump()
        accepted = a.send(100 * 1456)
        assert accepted <= 4 * cfg.payload_size

    def test_closed_send_raises(self):
        sched, a, b, pump = make_pair()
        a.close()
        with pytest.raises(RuntimeError):
            a.send(100)


class TestDuplex:
    def test_both_directions_carry_data_on_one_connection(self):
        """§4.8: 'The UDT library is a duplex transport service.  Each UDT
        entity has both a sender and a receiver.'"""
        sched = ManualScheduler()
        wires = {"a->b": [], "b->a": []}
        got = {"a": 0, "b": 0}
        cfg = UdtConfig()
        a = UdtCore(
            cfg, sched, lambda m, s: wires["a->b"].append((m, s)),
            deliver=lambda size, data: got.__setitem__("a", got["a"] + size),
            name="a",
        )
        b = UdtCore(
            cfg, sched, lambda m, s: wires["b->a"].append((m, s)),
            deliver=lambda size, data: got.__setitem__("b", got["b"] + size),
            name="b",
        )

        def pump():
            moved = True
            while moved:
                moved = False
                while wires["a->b"]:
                    m, s = wires["a->b"].pop(0)
                    b.on_datagram(m, s)
                    moved = True
                while wires["b->a"]:
                    m, s = wires["b->a"].pop(0)
                    a.on_datagram(m, s)
                    moved = True

        b.listen()
        a.connect()
        pump()
        a.send(30 * cfg.payload_size)
        b.send(20 * cfg.payload_size)
        step(sched, pump, 1.0)
        assert got["b"] == 30 * cfg.payload_size  # a -> b
        assert got["a"] == 20 * cfg.payload_size  # b -> a


class TestSpeculation:
    def test_in_order_stream_speculates_perfectly(self):
        sched, a, b, pump = make_pair()
        b.listen()
        a.connect()
        pump()
        a.send(50 * 1456)
        step(sched, pump, 0.5)
        rb = b.rcv_buffer
        assert rb.speculation_hits == 50
        assert rb.speculation_misses == 0

    def test_loss_costs_two_misses(self):
        def loss(m):
            return m.type_name == "data" and m.seq == 10 and not m.retransmitted

        sched, a, b, pump = make_pair(loss=loss)
        b.listen()
        a.connect()
        pump()
        a.send(30 * 1456)
        step(sched, pump, 1.0)
        rb = b.rcv_buffer
        # §4.6: "loss can cause 2 speculation errors (when it is lost and
        # when the retransmission arrives)"
        assert rb.speculation_misses == 2
        assert rb.delivered_packets == 30
