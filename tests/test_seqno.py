"""Unit + property tests for wrap-around sequence arithmetic."""

from hypothesis import given, strategies as st

from repro.udt.params import MAX_SEQ_NO
from repro.udt.seqno import (
    SEQ_THRESHOLD,
    seq_cmp,
    seq_dec,
    seq_inc,
    seq_len,
    seq_off,
    valid_seq,
)

seqs = st.integers(min_value=0, max_value=MAX_SEQ_NO - 1)
small = st.integers(min_value=0, max_value=10_000)


def test_basic_compare():
    assert seq_cmp(5, 3) > 0
    assert seq_cmp(3, 5) < 0
    assert seq_cmp(7, 7) == 0


def test_compare_across_wrap():
    near_top = MAX_SEQ_NO - 2
    assert seq_cmp(1, near_top) > 0  # 1 is *after* near_top modulo wrap
    assert seq_cmp(near_top, 1) < 0


def test_offset_across_wrap():
    assert seq_off(MAX_SEQ_NO - 1, 0) == 1
    assert seq_off(0, MAX_SEQ_NO - 1) == -1
    assert seq_off(MAX_SEQ_NO - 5, 5) == 10


def test_inc_dec_wrap():
    assert seq_inc(MAX_SEQ_NO - 1) == 0
    assert seq_dec(0) == MAX_SEQ_NO - 1


def test_seq_len_inclusive():
    assert seq_len(3, 5) == 3
    assert seq_len(5, 5) == 1
    assert seq_len(MAX_SEQ_NO - 1, 1) == 3


def test_valid_seq():
    assert valid_seq(0) and valid_seq(MAX_SEQ_NO - 1)
    assert not valid_seq(-1) and not valid_seq(MAX_SEQ_NO)


def test_off_at_exactly_threshold():
    # At exactly SEQ_THRESHOLD apart, the two directions are ambiguous;
    # seq_off resolves both to -SEQ_THRESHOLD (the reference impl's
    # convention: d >= threshold is treated as a backward distance).
    assert seq_off(0, SEQ_THRESHOLD) == -SEQ_THRESHOLD
    assert seq_off(SEQ_THRESHOLD, 0) == -SEQ_THRESHOLD
    # One below the threshold is still an ordinary forward offset.
    assert seq_off(0, SEQ_THRESHOLD - 1) == SEQ_THRESHOLD - 1


def test_cmp_at_exactly_threshold():
    # At exactly |a - b| == SEQ_THRESHOLD the wrap interpretation wins:
    # the difference flips sign, so 0 counts as *after* SEQ_THRESHOLD.
    # The edge stays antisymmetric: cmp(a, b) == -cmp(b, a).
    assert seq_cmp(0, SEQ_THRESHOLD) == SEQ_THRESHOLD
    assert seq_cmp(SEQ_THRESHOLD, 0) == -SEQ_THRESHOLD
    # One below the threshold is still the plain ordering.
    assert seq_cmp(0, SEQ_THRESHOLD - 1) < 0 < seq_cmp(SEQ_THRESHOLD - 1, 0)


def test_len_at_exactly_threshold():
    # Inclusive length of a run spanning exactly the threshold distance,
    # with and without crossing the wrap point.
    assert seq_len(0, SEQ_THRESHOLD) == SEQ_THRESHOLD + 1
    base = MAX_SEQ_NO - 5
    assert seq_len(base, seq_inc(base, SEQ_THRESHOLD)) == SEQ_THRESHOLD + 1


@given(seqs, small)
def test_offset_inverts_increment(base, step):
    assert seq_off(base, seq_inc(base, step)) == step


@given(seqs, small)
def test_cmp_sign_matches_offset(base, step):
    other = seq_inc(base, step)
    if step == 0:
        assert seq_cmp(base, other) == 0
    elif step < SEQ_THRESHOLD:
        assert seq_cmp(other, base) > 0
        assert seq_cmp(base, other) < 0


@given(seqs, small)
def test_inc_dec_roundtrip(base, step):
    assert seq_dec(seq_inc(base, step), step) == base


@given(seqs, small)
def test_len_matches_offset(base, step):
    assert seq_len(base, seq_inc(base, step)) == step + 1
