"""Unit + property tests for wrap-around sequence arithmetic."""

from hypothesis import given, strategies as st

from repro.udt.params import MAX_SEQ_NO
from repro.udt.seqno import (
    SEQ_THRESHOLD,
    seq_cmp,
    seq_dec,
    seq_inc,
    seq_len,
    seq_off,
    valid_seq,
)

seqs = st.integers(min_value=0, max_value=MAX_SEQ_NO - 1)
small = st.integers(min_value=0, max_value=10_000)


def test_basic_compare():
    assert seq_cmp(5, 3) > 0
    assert seq_cmp(3, 5) < 0
    assert seq_cmp(7, 7) == 0


def test_compare_across_wrap():
    near_top = MAX_SEQ_NO - 2
    assert seq_cmp(1, near_top) > 0  # 1 is *after* near_top modulo wrap
    assert seq_cmp(near_top, 1) < 0


def test_offset_across_wrap():
    assert seq_off(MAX_SEQ_NO - 1, 0) == 1
    assert seq_off(0, MAX_SEQ_NO - 1) == -1
    assert seq_off(MAX_SEQ_NO - 5, 5) == 10


def test_inc_dec_wrap():
    assert seq_inc(MAX_SEQ_NO - 1) == 0
    assert seq_dec(0) == MAX_SEQ_NO - 1


def test_seq_len_inclusive():
    assert seq_len(3, 5) == 3
    assert seq_len(5, 5) == 1
    assert seq_len(MAX_SEQ_NO - 1, 1) == 3


def test_valid_seq():
    assert valid_seq(0) and valid_seq(MAX_SEQ_NO - 1)
    assert not valid_seq(-1) and not valid_seq(MAX_SEQ_NO)


@given(seqs, small)
def test_offset_inverts_increment(base, step):
    assert seq_off(base, seq_inc(base, step)) == step


@given(seqs, small)
def test_cmp_sign_matches_offset(base, step):
    other = seq_inc(base, step)
    if step == 0:
        assert seq_cmp(base, other) == 0
    elif step < SEQ_THRESHOLD:
        assert seq_cmp(other, base) > 0
        assert seq_cmp(base, other) < 0


@given(seqs, small)
def test_inc_dec_roundtrip(base, step):
    assert seq_dec(seq_inc(base, step), step) == base


@given(seqs, small)
def test_len_matches_offset(base, step):
    assert seq_len(base, seq_inc(base, step)) == step + 1
