"""Integration tests: full UDT connections over the simulated network."""

import pytest

from repro.sim.topology import dumbbell, path_topology
from repro.udt import UdtConfig, start_udt_flow
from repro.udt.cc import FixedAimdCC
from repro.udt.params import MAX_SEQ_NO
from repro.udt.sim_adapter import UdtFlow


def test_handshake_establishes_both_sides():
    top = path_topology(10e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=0)
    top.net.run(until=1.0)
    assert f.sender.connected
    assert f.receiver.connected
    assert f.receiver.rcv_buffer.next_expected == f.sender.init_seq


def test_finite_transfer_completes_exactly():
    top = path_topology(10e6, 0.02)
    nbytes = 500_000
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=nbytes)
    top.net.run(until=10.0)
    assert f.done
    assert f.delivered_bytes == nbytes
    assert f.finish_time < 2.0


def test_bulk_flow_fills_clean_link():
    top = path_topology(100e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=6.0)
    # goodput ceiling is rate * payload/mss ~ 97 Mb/s
    assert f.throughput_bps(3.0, 6.0) > 90e6
    # the ramp may cost a handful of packets; steady state is loss-free
    assert f.sender.stats.retransmitted_pkts < 50


def test_recovers_from_random_loss():
    # 0.1% random link loss: NAK/retransmission must keep delivery exact.
    top = path_topology(20e6, 0.02, loss_rate=0.001)
    nbytes = 2_000_000
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=nbytes)
    top.net.run(until=30.0)
    assert f.done
    assert f.delivered_bytes == nbytes
    assert f.sender.stats.retransmitted_pkts > 0
    assert f.sender.stats.naks_received > 0


def test_survives_heavy_loss():
    top = path_topology(20e6, 0.02, loss_rate=0.05)
    nbytes = 300_000
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=nbytes)
    top.net.run(until=60.0)
    assert f.done
    assert f.delivered_bytes == nbytes


def test_sequence_wraparound_transfer():
    cfg = UdtConfig()
    top = path_topology(20e6, 0.01)
    # Start 100 packets before the wrap point.
    flow = UdtFlow(top.net, top.src, top.dst, config=cfg, nbytes=1_000_000)
    flow.sender.init_seq = MAX_SEQ_NO - 100
    flow.sender.curr_seq = MAX_SEQ_NO - 100
    flow.sender.snd_last_ack = MAX_SEQ_NO - 100
    flow.sender.max_seq_sent = MAX_SEQ_NO - 101
    top.net.run(until=10.0)
    assert flow.done
    assert flow.delivered_bytes == 1_000_000


def test_congestion_triggers_decrease_and_freeze():
    # Two bulk flows into one bottleneck must overflow the queue.
    d = dumbbell(2, 50e6, 0.02, queue_pkts=50)
    f1 = start_udt_flow(d.net, d.sources[0], d.sinks[0])
    f2 = start_udt_flow(d.net, d.sources[1], d.sinks[1])
    d.net.run(until=15.0)
    assert f1.sender.cc.decreases + f2.sender.cc.decreases > 0
    assert f1.sender.stats.freezes + f2.sender.stats.freezes > 0


def test_two_flows_share_fairly():
    d = dumbbell(2, 50e6, 0.02)
    f1 = start_udt_flow(d.net, d.sources[0], d.sinks[0])
    f2 = start_udt_flow(d.net, d.sources[1], d.sinks[1])
    d.net.run(until=20.0)
    t1 = f1.throughput_bps(10, 20)
    t2 = f2.throughput_bps(10, 20)
    assert t1 + t2 > 40e6  # high utilisation
    assert min(t1, t2) / max(t1, t2) > 0.6  #近 fair share


def test_flow_window_limits_inflight():
    cfg = UdtConfig(rcv_buffer_pkts=32)
    top = path_topology(100e6, 0.1)
    f = start_udt_flow(top.net, top.src, top.dst, config=cfg)
    top.net.run(until=5.0)
    # BDP is ~860 packets but the peer buffer caps flight at 32.
    from repro.udt.seqno import seq_off

    unacked = seq_off(f.sender.snd_last_ack, f.sender.curr_seq)
    assert unacked <= 32
    # throughput is window-bound: 32 * 1456B / 0.1s ~ 3.7 Mb/s
    assert f.throughput_bps(2, 5) < 10e6


def test_receiver_buffer_never_overflows_delivery():
    cfg = UdtConfig(rcv_buffer_pkts=64)
    top = path_topology(50e6, 0.05)
    nbytes = 1_000_000
    f = start_udt_flow(top.net, top.src, top.dst, config=cfg, nbytes=nbytes)
    top.net.run(until=20.0)
    assert f.done
    assert f.delivered_bytes == nbytes


def test_bandwidth_estimate_converges_to_capacity():
    top = path_topology(100e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=5.0)
    est_bps = f.sender.bandwidth * 1500 * 8
    assert est_bps == pytest.approx(100e6, rel=0.05)


def test_rtt_estimate_converges():
    top = path_topology(100e6, 0.05)
    f = start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=5.0)
    # receiver's ACK2-based estimate, reflected to the sender via ACKs
    assert f.sender.rtt == pytest.approx(0.05, rel=0.25)


def test_custom_cc_pluggable():
    top = path_topology(100e6, 0.02)
    f = start_udt_flow(
        top.net, top.src, top.dst, cc_factory=lambda cfg: FixedAimdCC(cfg, 1.0)
    )
    top.net.run(until=5.0)
    assert isinstance(f.sender.cc, FixedAimdCC)
    assert f.throughput_bps(2, 5) > 50e6


def test_close_sends_shutdown():
    top = path_topology(10e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=1.0)
    f.sender.close()
    top.net.run(until=1.5)
    assert f.receiver.closed


def test_ack_traffic_is_timer_based_not_per_packet():
    top = path_topology(100e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=5.0)
    data = f.sender.stats.data_pkts_sent
    acks = f.receiver.stats.acks_sent
    # ~1 ACK per SYN (500 over 5 s), while data is tens of thousands.
    assert acks < 600
    assert data > 20_000


def test_exp_timeout_retransmits_when_all_feedback_lost():
    # Break the reverse path entirely after connection setup by closing
    # the receiver-side endpoint; sender must hit EXP and not spin.
    top = path_topology(2e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=2_000_000)
    top.net.run(until=0.5)  # mid-transfer
    assert not f.done
    # Blackhole the reverse path: every ACK/NAK from the receiver vanishes.
    f.receiver._transmit = lambda msg, size: None
    top.net.run(until=10.0)
    assert f.sender.stats.exp_events > 0
    assert f.sender.stats.retransmitted_pkts > 0
