"""Tests for the SABUL baseline protocol."""

from repro.sabul import SabulCC, start_sabul_flow
from repro.sim.topology import dumbbell, path_topology
from repro.udt import UdtConfig
from repro.udt.cc import LossEvent


class FakeCtx:
    def __init__(self):
        self.t = 0.0
        self.rtt = 0.1
        self.recv_rate = 1000.0
        self.bandwidth = 0.0
        self.max_seq_sent = 0

    def now(self):
        return self.t


class TestSabulCC:
    def _cc(self):
        cc = SabulCC(UdtConfig(flow_control=False), static_window=100)
        ctx = FakeCtx()
        cc.init(ctx)
        return cc, ctx

    def test_window_is_static(self):
        cc, ctx = self._cc()
        ctx.t = 0.02
        cc.on_ack(50)
        assert cc.window == 100.0
        ctx.t = 0.04
        cc.on_ack(150)
        assert cc.window == 100.0

    def test_mimd_increase_after_first_loss(self):
        cc, ctx = self._cc()
        ctx.max_seq_sent = 100
        cc.on_loss(LossEvent([(1, 2)], biggest_seq=2, lost_packets=2))
        p0 = cc.period
        ctx.t = 0.02
        cc.on_ack(50)
        assert cc.period == p0 / 1.10  # multiplicative, not additive

    def test_decrease_is_epoch_gated(self):
        cc, ctx = self._cc()
        ctx.max_seq_sent = 100
        cc.on_loss(LossEvent([(1, 2)], biggest_seq=2, lost_packets=2))
        p1 = cc.period
        # stale NAK (seq <= last_dec_seq=100) does not decrease again
        cc.on_loss(LossEvent([(50, 55)], biggest_seq=55, lost_packets=6))
        assert cc.period == p1

    def test_timeout_backs_off(self):
        cc, ctx = self._cc()
        cc.on_timeout()
        p = cc.period
        cc.on_timeout()
        assert cc.period > p


class TestSabulFlow:
    def test_fills_link(self):
        top = path_topology(50e6, 0.02)
        f = start_sabul_flow(top.net, top.src, top.dst)
        top.net.run(until=10.0)
        assert f.throughput_bps(5, 10) > 40e6

    def test_reliable_delivery_under_loss(self):
        top = path_topology(20e6, 0.02, loss_rate=0.002)
        f = start_sabul_flow(top.net, top.src, top.dst, nbytes=1_000_000)
        top.net.run(until=30.0)
        assert f.done
        assert f.delivered_bytes == 1_000_000

    def test_slower_fairness_convergence_than_udt(self):
        from repro.metrics import jain_index
        from repro.udt import start_udt_flow

        def converge(starter):
            d = dumbbell(2, 50e6, 0.02, seed=3)
            f1 = starter(d.net, d.sources[0], d.sinks[0], flow_id="a")
            f2 = starter(d.net, d.sources[1], d.sinks[1], start=5.0, flow_id="b")
            d.net.run(until=25.0)
            return jain_index(
                [f1.throughput_bps(15, 25), f2.throughput_bps(15, 25)]
            )

        assert converge(start_udt_flow) >= converge(start_sabul_flow) - 0.05
