"""Integration tests: TCP flows over the simulated network."""

import pytest

from repro.sim.topology import dumbbell, path_topology
from repro.tcp import (
    BicResponse,
    HighSpeedResponse,
    ScalableResponse,
    TcpConfig,
    VegasResponse,
    WestwoodResponse,
    start_tcp_flow,
)


def test_fills_low_bdp_link():
    top = path_topology(10e6, 0.02)
    f = start_tcp_flow(top.net, top.src, top.dst)
    top.net.run(until=10.0)
    assert f.throughput_bps(3, 10) > 9e6


def test_finite_transfer_exact_and_done():
    top = path_topology(10e6, 0.02)
    f = start_tcp_flow(top.net, top.src, top.dst, nbytes=300_000)
    top.net.run(until=10.0)
    assert f.done
    assert f.delivered_bytes == 300_000
    assert f.sink.fin_seen


def test_recovers_from_random_loss_exactly():
    top = path_topology(10e6, 0.02, loss_rate=0.002)
    f = start_tcp_flow(top.net, top.src, top.dst, nbytes=1_000_000)
    top.net.run(until=60.0)
    assert f.done
    assert f.delivered_bytes == 1_000_000
    assert f.sender.stats.retransmits > 0


def test_congestion_halves_window():
    top = path_topology(10e6, 0.02, queue_pkts=20)
    f = start_tcp_flow(top.net, top.src, top.dst)
    top.net.run(until=10.0)
    s = f.sender.stats
    assert s.fast_recoveries > 0
    # sustained operation despite drops
    assert f.throughput_bps(5, 10) > 7e6


def test_two_flows_share_link():
    d = dumbbell(2, 20e6, 0.02)
    f1 = start_tcp_flow(d.net, d.sources[0], d.sinks[0])
    f2 = start_tcp_flow(d.net, d.sources[1], d.sinks[1], start=1.0)
    d.net.run(until=30.0)
    t1, t2 = f1.throughput_bps(15, 30), f2.throughput_bps(15, 30)
    assert t1 + t2 > 17e6
    assert min(t1, t2) / max(t1, t2) > 0.4


def test_rtt_bias_short_beats_long():
    """§2.2: concurrent TCP flows with different RTTs — RTT bias."""
    from repro.sim.topology import join_topology
    from repro.tcp import TcpFlow

    # A modest queue keeps queueing delay from equalising the RTTs.
    j = join_topology(rate_bps=100e6, rtt_a=0.1, rtt_b=0.01, queue_pkts=100)
    fa = TcpFlow(j.net, j.src_a, j.sink, flow_id="long")
    fb = TcpFlow(j.net, j.src_b, j.sink, flow_id="short")
    j.net.run(until=30.0)
    assert fb.throughput_bps(10, 30) > 2.0 * fa.throughput_bps(10, 30)


def test_rwnd_limits_flight():
    cfg = TcpConfig(rwnd_pkts=16)
    top = path_topology(100e6, 0.1)
    f = start_tcp_flow(top.net, top.src, top.dst, config=cfg)
    top.net.run(until=5.0)
    assert f.sender.snd_nxt - f.sender.snd_una <= 16
    assert f.throughput_bps(2, 5) < 5e6


def test_rto_recovers_tail_loss():
    # Lossy enough that the final segments may need timeouts.
    top = path_topology(5e6, 0.05, loss_rate=0.02)
    f = start_tcp_flow(top.net, top.src, top.dst, nbytes=200_000)
    top.net.run(until=120.0)
    assert f.done
    assert f.delivered_bytes == 200_000


@pytest.mark.parametrize(
    "response_cls",
    [HighSpeedResponse, ScalableResponse, BicResponse, VegasResponse, WestwoodResponse],
)
def test_variants_fill_link(response_cls):
    top = path_topology(50e6, 0.02)
    f = start_tcp_flow(top.net, top.src, top.dst, response=response_cls())
    top.net.run(until=15.0)
    assert f.throughput_bps(8, 15) > 35e6


def test_highspeed_ramps_faster_than_reno_at_high_bdp():
    """The §5.2 claim: HighSpeed probes available bandwidth faster."""

    def run(response):
        top = path_topology(622e6, 0.016, loss_rate=1e-5)
        f = start_tcp_flow(top.net, top.src, top.dst, response=response)
        top.net.run(until=15.0)
        return f.throughput_bps(5, 15)

    assert run(HighSpeedResponse()) > run(None)  # None -> Reno
