"""Unit tests for queues, links, nodes and routing."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import FRAG_HEADER, Link
from repro.sim.node import Host, Router
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, REDQueue
from repro.sim.topology import (
    Network,
    bdp_packets,
    dumbbell,
    join_topology,
    multi_bottleneck,
    paper_queue_size,
    path_topology,
)


def mkpkt(size=1500, dst=(1, 7)):
    return Packet(size=size, src=(0, 1), dst=dst)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10)
        pkts = [mkpkt() for _ in range(3)]
        for p in pkts:
            assert q.push(p)
        assert [q.pop() for _ in range(3)] == pkts

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.push(mkpkt())
        assert q.push(mkpkt())
        assert not q.push(mkpkt())
        assert q.drops == 1
        assert len(q) == 2

    def test_byte_cap(self):
        q = DropTailQueue(100, capacity_bytes=3000)
        assert q.push(mkpkt(1500))
        assert q.push(mkpkt(1500))
        assert not q.push(mkpkt(1))
        assert q.drops == 1

    def test_byte_accounting(self):
        q = DropTailQueue(10)
        q.push(mkpkt(1000))
        q.push(mkpkt(500))
        assert q.bytes == 1500
        q.pop()
        assert q.bytes == 500

    def test_pop_empty_returns_none(self):
        assert DropTailQueue(5).pop() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestRED:
    def test_accepts_below_min_threshold(self):
        q = REDQueue(100, min_th=10, max_th=30)
        for _ in range(5):
            assert q.push(mkpkt())
        assert q.drops == 0

    def test_drops_under_sustained_load(self):
        import random

        q = REDQueue(100, min_th=5, max_th=15, rng=random.Random(1))
        pushed = 0
        for _ in range(500):
            if q.push(mkpkt()):
                pushed += 1
            if len(q) > 20:
                q.pop()
        assert q.drops > 0
        assert pushed > 0

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            REDQueue(100, min_th=30, max_th=10)


class _Sink(Host):
    def __init__(self, sim, node_id):
        super().__init__(sim, node_id)
        self.got = []

    def deliver(self, pkt):
        self.got.append((self.sim.now, pkt))


class TestLink:
    def _pair(self, rate=8e6, delay=0.01, **kw):
        sim = Simulator()
        a = Host(sim, 0)
        b = _Sink(sim, 1)
        link = Link(sim, a, b, rate, delay, **kw)
        a.routes[1] = link
        return sim, a, b, link

    def test_delivery_time_is_serialisation_plus_propagation(self):
        sim, a, b, link = self._pair(rate=8e6, delay=0.01)
        a.send(mkpkt(1000))  # 1000 B at 8 Mb/s = 1 ms
        sim.run()
        assert b.got[0][0] == pytest.approx(0.011)

    def test_back_to_back_serialised(self):
        sim, a, b, link = self._pair(rate=8e6, delay=0.0)
        a.send(mkpkt(1000))
        a.send(mkpkt(1000))
        sim.run()
        times = [t for t, _ in b.got]
        assert times == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_queue_overflow_drops(self):
        sim, a, b, link = self._pair(rate=8e3, queue=DropTailQueue(2))
        for _ in range(10):
            a.send(mkpkt(1000))
        sim.run()
        # 1 in flight + 2 queued survive
        assert len(b.got) == 3
        assert link.queue.drops == 7

    def test_random_loss(self):
        sim, a, b, link = self._pair(
            rate=8e9, loss_rate=0.5, queue=DropTailQueue(500)
        )
        for _ in range(200):
            a.send(mkpkt(1000))
        sim.run()
        assert 60 < len(b.got) < 140
        assert link.pkts_lost == 200 - len(b.got)

    def test_fragmentation_overhead_and_count(self):
        sim, a, b, link = self._pair(mtu=1500)
        big = mkpkt(3001)
        assert link.fragments(big) == 3
        assert link.wire_size(big) == 3001 + 2 * FRAG_HEADER
        small = mkpkt(1500)
        assert link.fragments(small) == 1
        assert link.wire_size(small) == 1500

    def test_fragment_loss_amplification(self):
        # With per-fragment loss, large packets die more often.
        sim, a, b, link = self._pair(rate=8e9, loss_rate=0.05, mtu=1500)
        for _ in range(300):
            a.send(mkpkt(6000))
        sim.run()
        survival = len(b.got) / 300
        assert survival < 0.90  # (1-0.05)^4 ~= 0.81

    def test_invalid_params(self):
        sim = Simulator()
        a, b = Host(sim, 0), Host(sim, 1)
        with pytest.raises(ValueError):
            Link(sim, a, b, 0, 0.01)
        with pytest.raises(ValueError):
            Link(sim, a, b, 1e6, -1)
        with pytest.raises(ValueError):
            Link(sim, a, b, 1e6, 0.01, loss_rate=1.5)


class TestNodesRouting:
    def test_host_port_demux(self):
        sim = Simulator()
        h = Host(sim, 0)
        got = []
        h.bind(5, lambda p: got.append(p))
        pkt = Packet(100, (0, 9), (0, 5))
        sim.schedule(0, h.receive, pkt)
        sim.run()
        assert got == [pkt]

    def test_unbound_port_dropped_silently(self):
        sim = Simulator()
        h = Host(sim, 0)
        h.receive(Packet(100, (0, 9), (0, 77)))

    def test_double_bind_rejected(self):
        sim = Simulator()
        h = Host(sim, 0)
        h.bind(5, lambda p: None)
        with pytest.raises(ValueError):
            h.bind(5, lambda p: None)

    def test_next_free_port_skips_bound(self):
        sim = Simulator()
        h = Host(sim, 0)
        p = h.next_free_port()
        h.bind(p, lambda x: None)
        assert h.next_free_port() == p + 1

    def test_router_delivery_is_error(self):
        sim = Simulator()
        r = Router(sim, 0)
        with pytest.raises(RuntimeError):
            r.deliver(mkpkt(dst=(0, 1)))

    def test_multihop_forwarding(self):
        net = Network()
        a = net.add_host("a")
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        b = net.add_host("b")
        net.add_link(a, r1, 1e9, 0.001)
        net.add_link(r1, r2, 1e9, 0.001)
        net.add_link(r2, b, 1e9, 0.001)
        net.finalize()
        got = []
        b.bind(1, got.append)
        a.send(Packet(100, (a.id, 0), (b.id, 1)))
        net.run(until=1.0)
        assert len(got) == 1
        assert got[0].hops == 3

    def test_loopback_delivery(self):
        net = Network()
        a = net.add_host("a")
        net.finalize()
        got = []
        a.bind(1, got.append)
        a.send(Packet(100, (a.id, 0), (a.id, 1)))
        net.run(until=0.1)
        assert len(got) == 1

    def test_unroutable_counted(self):
        net = Network()
        a = net.add_host("a")
        net.add_host("b")
        net.finalize()
        ok = a.send(Packet(100, (a.id, 0), (99, 1)))
        assert not ok
        assert a.pkts_unroutable == 1

    def test_routing_prefers_short_delay_path(self):
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        r_fast = net.add_router("fast")
        r_slow = net.add_router("slow")
        net.add_link(a, r_fast, 1e9, 0.001)
        net.add_link(r_fast, b, 1e9, 0.001)
        net.add_link(a, r_slow, 1e9, 0.5)
        net.add_link(r_slow, b, 1e9, 0.5)
        net.finalize()
        assert a.routes[b.id].dst is r_fast


class TestTopologies:
    def test_bdp_and_queue_rules(self):
        assert bdp_packets(1e9, 0.1) == 8334
        assert paper_queue_size(1e6, 0.001) == 100  # floor at 100
        assert paper_queue_size(1e9, 0.1) == 8334

    def test_dumbbell_structure(self):
        d = dumbbell(3, 100e6, 0.02)
        assert len(d.sources) == len(d.sinks) == 3
        # every source routes to every sink via the bottleneck routers
        for s, k in zip(d.sources, d.sinks):
            assert s.routes[k.id].dst is d.left

    def test_dumbbell_rtt(self):
        d = dumbbell(1, 100e6, 0.02)
        # one-way propagation ~ rtt/2
        total = (
            d.net.links[(d.sources[0].id, d.left.id)].delay
            + d.bottleneck.delay
            + d.net.links[(d.right.id, d.sinks[0].id)].delay
        )
        assert total == pytest.approx(0.01, rel=0.01)

    def test_join_topology_asymmetric_rtts(self):
        j = join_topology(rtt_a=0.1, rtt_b=0.001)
        la = j.net.links[(j.src_a.id, j.gateway.id)]
        lb = j.net.links[(j.src_b.id, j.gateway.id)]
        assert la.delay == pytest.approx(0.05)
        assert lb.delay == pytest.approx(0.0005)

    def test_path_topology_cross_sources(self):
        t = path_topology(1e8, 0.02, cross_sources=2)
        crosses = [n for n in t.net.nodes.values() if n.name.startswith("cross")]
        assert len(crosses) == 2
        for x in crosses:
            assert t.dst.id in x.routes

    def test_multi_bottleneck(self):
        m = multi_bottleneck(3, 1e8, 0.01)
        assert len(m.bottlenecks) == 3
        long_src, long_dst = m.sources[0], m.sinks[0]
        # the long flow's first hop is router 0
        assert long_src.routes[long_dst.id].dst is m.routers[0]
        with pytest.raises(ValueError):
            multi_bottleneck(1, 1e8, 0.01)
