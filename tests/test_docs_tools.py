"""Docs tooling tests: clidoc (CLI reference generation) and docscheck.

These are the unit-level half of the docs CI job; the job itself runs
``python -m repro.analysis.clidoc --check`` and
``python -m repro.analysis.docscheck`` over the committed tree, and the
drift tests here make ``pytest`` catch the same problems earlier.
"""

from pathlib import Path

from repro.analysis import clidoc, docscheck

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestClidoc:
    def test_reference_covers_once_missing_flags(self):
        # the flags whose omission motivated generating the reference
        ref = clidoc.generate_reference()
        assert "--progress-file" in ref
        assert "--sanitize-format" in ref
        assert "--fidelity" in ref

    def test_walk_recurses_into_nested_subcommands(self):
        flags = clidoc.known_flags()
        assert "sweep" in flags
        assert "--fidelity" in flags["sweep"]
        assert "--progress-file" in flags["sweep"]
        assert "--sanitize-format" in flags["lint"]
        # nested leaves appear under their full path, not the group name
        assert "trace query" in flags
        assert "trace" not in flags

    def test_committed_reference_is_current(self):
        # same check the docs CI job runs; regenerate with
        #   python -m repro.analysis.clidoc --write
        assert clidoc.check_doc(REPO_ROOT / "docs" / "API.md") == []

    def test_check_detects_stale_block(self, tmp_path):
        doc = tmp_path / "API.md"
        doc.write_text(
            f"# API\n\n{clidoc.BEGIN_MARK}\nstale text\n{clidoc.END_MARK}\n",
            encoding="utf-8",
        )
        assert clidoc.check_doc(doc)
        assert clidoc.write_doc(doc) is True
        assert clidoc.check_doc(doc) == []
        # idempotent: a second write changes nothing
        assert clidoc.write_doc(doc) is False


class TestGithubSlug:
    def test_code_span_content_is_kept(self):
        seen = {}
        slug = docscheck.github_slug("Hot-path profiler (`repro.obs.prof`)", seen)
        assert slug == "hot-path-profiler-reproobsprof"

    def test_duplicates_get_numeric_suffix(self):
        seen = {}
        assert docscheck.github_slug("Setup", seen) == "setup"
        assert docscheck.github_slug("Setup", seen) == "setup-1"
        assert docscheck.github_slug("Setup", seen) == "setup-2"


class TestDocscheck:
    def test_committed_docs_are_clean(self):
        errors, n_docs = docscheck.run_checks(
            REPO_ROOT, ["links", "flags", "events"]
        )
        assert errors == []
        assert n_docs >= 5

    def test_broken_link_is_reported(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "see [missing](docs/NOPE.md) for details\n", encoding="utf-8"
        )
        errors, _n = docscheck.run_checks(tmp_path, ["links"])
        assert len(errors) == 1
        assert "broken link" in errors[0]

    def test_missing_anchor_is_reported(self, tmp_path):
        (tmp_path / "DESIGN.md").write_text("# Design\n\n## Engine\n", encoding="utf-8")
        (tmp_path / "README.md").write_text(
            "[engine](DESIGN.md#engine) and [bogus](DESIGN.md#no-such)\n",
            encoding="utf-8",
        )
        errors, _n = docscheck.run_checks(tmp_path, ["links"])
        assert len(errors) == 1
        assert "missing anchor" in errors[0]

    def test_unknown_flag_is_reported(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "run `repro-udt sweep --no-such-flag 1.0` to reproduce\n",
            encoding="utf-8",
        )
        errors, _n = docscheck.run_checks(tmp_path, ["flags"])
        assert len(errors) == 1
        assert "--no-such-flag" in errors[0]

    def test_real_flag_passes(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "run `repro-udt sweep --fidelity hybrid --scale 1.0`\n",
            encoding="utf-8",
        )
        errors, _n = docscheck.run_checks(tmp_path, ["flags"])
        assert errors == []

    def test_flags_do_not_bleed_across_commands_on_one_line(self, tmp_path):
        # two commands quoted on one line: each owns only its own tail
        (tmp_path / "README.md").write_text(
            "`repro-udt conform out.rtrc  # or: repro-udt lint "
            "--conformance out.rtrc`\n",
            encoding="utf-8",
        )
        errors, _n = docscheck.run_checks(tmp_path, ["flags"])
        assert errors == []

    def test_unknown_event_kind_is_reported(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "the bus emits fluid.enter and fluid.wormhole events\n",
            encoding="utf-8",
        )
        errors, _n = docscheck.run_checks(tmp_path, ["events"])
        assert len(errors) == 1
        assert "fluid.wormhole" in errors[0]

    def test_file_names_are_not_event_kinds(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "see link.py and cpu.py; traces live in trace.rtrc files\n",
            encoding="utf-8",
        )
        errors, _n = docscheck.run_checks(tmp_path, ["events"])
        assert errors == []
