"""Unit tests for the CPU and disk cost models."""

import pytest

from repro.hostmodel import (
    CpuMeter,
    DiskModel,
    SITE_DISKS,
    TCP_RECEIVER_COSTS,
    TCP_SENDER_COSTS,
    UDT_RECEIVER_COSTS,
    UDT_SENDER_COSTS,
)
from repro.hostmodel.cpu import (
    DEFAULT_CPU_HZ,
    UDT_RECV_UTIL,
    UDT_SEND_UTIL,
    UDT_RECEIVER_SHARES,
    UDT_SENDER_SHARES,
)
from repro.hostmodel.disk import disk_disk_limit


def drive_reference_workload(meter, role, seconds=1.0):
    """Replicate the paper's ~970 Mb/s reference workload on a meter."""
    pps = int(970e6 / (1500 * 8) * seconds)
    for _ in range(pps):
        if role == "send":
            meter.on_data_sent(1456)
        else:
            meter.on_data_received(1456)
    for _ in range(int(100 * seconds)):  # ACK per SYN
        if role == "send":
            meter.on_ctrl("ack")
        else:
            meter.on_ctrl_sent(40)


class TestCalibration:
    def test_udt_sender_utilisation_matches_fig14(self):
        clock = [0.0]
        m = CpuMeter(UDT_SENDER_COSTS, lambda: clock[0])
        drive_reference_workload(m, "send")
        clock[0] = 1.0
        assert m.utilization() * 100 == pytest.approx(UDT_SEND_UTIL, rel=0.05)

    def test_udt_receiver_utilisation_matches_fig14(self):
        clock = [0.0]
        m = CpuMeter(UDT_RECEIVER_COSTS, lambda: clock[0])
        drive_reference_workload(m, "recv")
        clock[0] = 1.0
        assert m.utilization() * 100 == pytest.approx(UDT_RECV_UTIL, rel=0.05)

    def test_tcp_utilisation_below_udt(self):
        for costs, util in ((TCP_SENDER_COSTS, 33), (TCP_RECEIVER_COSTS, 35)):
            clock = [0.0]
            m = CpuMeter(costs, lambda: clock[0])
            drive_reference_workload(m, "send")
            clock[0] = 1.0
            assert m.utilization() * 100 == pytest.approx(util, rel=0.15)

    def test_sender_breakdown_matches_table3(self):
        clock = [0.0]
        m = CpuMeter(UDT_SENDER_COSTS, lambda: clock[0])
        drive_reference_workload(m, "send")
        bd = m.breakdown()
        assert bd["udp_io"] * 100 == pytest.approx(
            UDT_SENDER_SHARES["udp_io"], rel=0.05
        )
        assert bd["timing"] * 100 == pytest.approx(
            UDT_SENDER_SHARES["timing"], rel=0.05
        )
        assert bd["ctrl"] * 100 == pytest.approx(UDT_SENDER_SHARES["ctrl"], rel=0.10)

    def test_receiver_breakdown_udp_read_dominates(self):
        clock = [0.0]
        m = CpuMeter(UDT_RECEIVER_COSTS, lambda: clock[0])
        drive_reference_workload(m, "recv")
        bd = m.breakdown()
        assert bd["udp_io"] * 100 == pytest.approx(
            UDT_RECEIVER_SHARES["udp_io"], rel=0.10
        )

    def test_utilisation_scales_with_rate(self):
        clock = [0.0]
        m = CpuMeter(UDT_SENDER_COSTS, lambda: clock[0])
        # half the packets in the same time -> roughly half the utilisation
        for _ in range(int(970e6 / (1500 * 8) / 2)):
            m.on_data_sent(1456)
        clock[0] = 1.0
        assert m.utilization() * 100 == pytest.approx(UDT_SEND_UTIL / 2, rel=0.15)

    def test_memory_copy_dominates_per_byte(self):
        # §6: copy cost (per byte) dwarfs the fixed syscall cost at MSS.
        c = UDT_SENDER_COSTS
        assert c.udp_io_byte * 1456 > 3 * c.udp_io_pkt


class TestMeterMechanics:
    def test_zero_time_zero_utilisation(self):
        m = CpuMeter(UDT_SENDER_COSTS, lambda: 0.0)
        assert m.utilization() == 0.0

    def test_loss_processing_charged(self):
        m = CpuMeter(UDT_RECEIVER_COSTS, lambda: 0.0)
        m.on_loss_processing(events=5)
        assert m.cycles["loss"] > 0

    def test_breakdown_sums_to_one(self):
        clock = [0.0]
        m = CpuMeter(UDT_SENDER_COSTS, lambda: clock[0])
        drive_reference_workload(m, "send")
        assert sum(m.breakdown().values()) == pytest.approx(1.0)

    def test_empty_breakdown_is_zeros(self):
        m = CpuMeter(UDT_SENDER_COSTS, lambda: 0.0)
        assert all(v == 0.0 for v in m.breakdown().values())


class TestDisk:
    def test_transfer_times(self):
        d = DiskModel("d", read_bps=400e6, write_bps=320e6, startup_latency=0.0)
        assert d.read_time(50_000_000) == pytest.approx(1.0)
        assert d.write_time(40_000_000) == pytest.approx(1.0)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            DiskModel("bad", read_bps=0, write_bps=1)

    def test_site_disks_slower_than_gbe(self):
        # Table 2's premise: disk IO, not the Gb/s network, is the bottleneck.
        for d in SITE_DISKS.values():
            assert d.read_bps < 1e9 and d.write_bps < 1e9
            assert d.read_bps > d.write_bps  # reads faster than writes

    def test_disk_disk_limit(self):
        src = SITE_DISKS["Chicago"]
        dst = SITE_DISKS["Amsterdam"]
        lim = disk_disk_limit(src, dst, 1e9)
        assert lim == min(src.read_bps, dst.write_bps)
        assert disk_disk_limit(src, dst, 100e6) == 100e6
