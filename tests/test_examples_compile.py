"""Every example must at least compile and carry a runnable main()."""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # deliverable: at least three runnable examples


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main()"
    assert '__name__ == "__main__"' in path.read_text()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every repro import an example references must exist."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module.startswith("repro")
        ):
            mod = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(mod, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
