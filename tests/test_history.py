"""Unit tests for arrival-speed / capacity filters and RTT estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.udt.history import (
    ArrivalRecorder,
    IntervalWindow,
    ProbeRecorder,
    RttEstimator,
)


class TestIntervalWindow:
    def test_uniform_intervals(self):
        w = IntervalWindow(16)
        for _ in range(16):
            w.push(0.001)
        assert w.filtered_rate() == pytest.approx(1000.0)

    def test_outliers_rejected(self):
        w = IntervalWindow(16)
        for _ in range(14):
            w.push(0.001)
        w.push(1.0)  # a long sending pause
        w.push(1e-7)  # a burst artefact
        assert w.filtered_rate() == pytest.approx(1000.0)

    def test_majority_requirement(self):
        w = IntervalWindow(16)
        # Half 1 ms, half 100 ms: nothing close to the median dominates.
        for i in range(16):
            w.push(0.001 if i % 2 else 0.1)
        assert w.filtered_rate(require_majority=True) == 0.0

    def test_too_few_samples(self):
        w = IntervalWindow(16)
        w.push(0.001)
        assert w.filtered_rate() == 0.0

    def test_zero_median_safe(self):
        w = IntervalWindow(4)
        for _ in range(4):
            w.push(0.0)
        assert w.filtered_rate() == 0.0

    def test_rolls_over(self):
        w = IntervalWindow(4)
        for _ in range(4):
            w.push(1.0)
        for _ in range(4):
            w.push(0.001)
        assert w.filtered_rate() == pytest.approx(1000.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalWindow(4).push(-1.0)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            IntervalWindow(1)

    @given(st.floats(min_value=1e-6, max_value=1.0))
    def test_constant_interval_recovers_rate(self, dt):
        w = IntervalWindow(16)
        for _ in range(16):
            w.push(dt)
        assert w.filtered_rate() == pytest.approx(1.0 / dt, rel=1e-6)


class TestArrivalRecorder:
    def test_speed_from_stream(self):
        r = ArrivalRecorder()
        t = 0.0
        for _ in range(20):
            r.on_arrival(t)
            t += 0.002
        assert r.speed() == pytest.approx(500.0)

    def test_skip_breaks_chain(self):
        r = ArrivalRecorder()
        r.on_arrival(0.0)
        r.skip()
        r.on_arrival(100.0)  # must NOT create a 100 s interval
        assert len(r.window) == 0

    def test_unmeasurable_returns_zero(self):
        assert ArrivalRecorder().speed() == 0.0


class TestProbeRecorder:
    def test_capacity_from_pairs(self):
        p = ProbeRecorder()
        t = 0.0
        for _ in range(16):
            p.on_probe1(t)
            p.on_probe2(t + 0.00012)  # 1500B at 100 Mb/s
            t += 1.0
        assert p.capacity() == pytest.approx(1 / 0.00012, rel=1e-6)

    def test_orphan_probe2_ignored(self):
        p = ProbeRecorder()
        p.on_probe2(1.0)
        assert len(p.window) == 0

    def test_probe1_without_probe2_then_new_pair(self):
        p = ProbeRecorder()
        p.on_probe1(0.0)
        p.on_probe1(5.0)  # first pair broken; restart
        p.on_probe2(5.1)
        assert len(p.window) == 1


class TestRttEstimator:
    def test_first_sample_adopted(self):
        e = RttEstimator(initial=0.5)
        e.update(0.1)
        assert e.rtt == pytest.approx(0.1)

    def test_ewma_converges(self):
        e = RttEstimator()
        for _ in range(100):
            e.update(0.2)
        assert e.rtt == pytest.approx(0.2, rel=1e-3)
        assert e.var == pytest.approx(0.0, abs=1e-3)

    def test_rto_exceeds_rtt(self):
        e = RttEstimator()
        e.update(0.1)
        e.update(0.3)
        assert e.rto > e.rtt

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().update(-0.1)
