"""Tests for experiment plumbing, the registry and fast runners."""

import pytest

from repro.cli import main as cli_main
from repro.experiments import REGISTRY, get_experiment, list_experiments
from repro.experiments.common import ExperimentResult, mbps, scaled
from repro.experiments.fig09_losslist import synth_loss_trace
from repro.experiments.table1_increase import run as run_table1


class TestExperimentResult:
    def test_add_and_column(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        r.add(1, 2)
        r.add(3, 4)
        assert r.column("a") == [1, 3]
        assert r.column("b") == [2, 4]

    def test_row_arity_checked(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            r.add(1)

    def test_to_text_contains_everything(self):
        r = ExperimentResult("fig99", "demo", ["col"], notes="hello")
        r.add(3.14159)
        text = r.to_text()
        assert "fig99" in text and "col" in text and "3.14" in text
        assert "hello" in text

    def test_print(self, capsys):
        r = ExperimentResult("x", "t", ["a"])
        r.add(1)
        r.print()
        assert "x: t" in capsys.readouterr().out


class TestScaling:
    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scaled(100.0) == 50.0

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(100.0, minimum=7.0) == 7.0

    def test_mbps(self):
        assert mbps(1e6) == 1.0


class TestRegistry:
    def test_every_paper_artefact_registered(self):
        ids = set(REGISTRY)
        expected = {
            "table1", "table2", "table3",
            "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
            "fig08", "fig09", "fig11", "fig12", "fig13", "fig14", "fig15",
        }
        assert expected <= ids

    def test_ablations_registered(self):
        assert any(i.startswith("ablation-") for i in REGISTRY)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_list(self):
        assert len(list_experiments()) == len(REGISTRY)


class TestFastRunners:
    def test_table1_exact(self):
        result = run_table1()
        assert all(m == "yes" for m in result.column("match"))

    def test_table1_mss_correction(self):
        result = run_table1(mss=750)
        # corrected by 1500/MSS = 2x
        assert result.column("inc (ours)")[0] == pytest.approx(20.0)

    def test_loss_trace_shape(self):
        trace = synth_loss_trace(n_events=50, max_burst=100, seed=1)
        assert len(trace) == 50
        assert all(a <= b for a, b in trace)
        # disjoint and increasing
        for (a1, b1), (a2, b2) in zip(trace, trace[1:]):
            assert b1 < a2


class TestCli:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out and "table1" in out

    def test_run_table1(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "increase parameter" in out
        assert "finished in" in out

    def test_run_unknown(self):
        with pytest.raises(KeyError):
            cli_main(["run", "nope"])

    def test_run_with_set_override(self, capsys):
        assert cli_main(["run", "table1", "--set", "mss=750"]) == 0
        out = capsys.readouterr().out
        assert "MSS=750" in out

    def test_bad_set_syntax_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "table1", "--set", "nonsense"])
