"""Unit + property tests for compressed loss-report encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.udt.nakcodec import RANGE_FLAG, decode, encode, report_size_bytes
from repro.udt.params import MAX_SEQ_NO
from repro.udt.seqno import seq_inc


def test_paper_appendix_example():
    # "0x80000003, 0x00000006, 0x8000000F, 0x00000012" encodes
    # 3..6 and 15(0xF)..18(0x12) — the appendix's worked example shape.
    words = [0x80000003, 0x00000006, 0x8000000F, 0x00000012]
    assert decode(words) == [(3, 6), (0xF, 0x12)]


def test_single_loss_is_one_word():
    assert encode([(7, 7)]) == [7]
    assert report_size_bytes(encode([(7, 7)])) == 4


def test_range_uses_flag_bit():
    words = encode([(3, 6)])
    assert words == [3 | RANGE_FLAG, 6]


def test_mixed_report():
    ranges = [(3, 6), (9, 9), (20, 25)]
    words = encode(ranges)
    assert decode(words) == ranges
    # compression: 10 losses in 5 words instead of 10
    assert len(words) == 5


def test_wrap_around_range():
    top = MAX_SEQ_NO - 2
    ranges = [(top, seq_inc(top, 3))]
    assert decode(encode(ranges)) == ranges


def test_wrap_boundary_roundtrip():
    # The exact wrap edge: MAX_SEQ_NO-1 -> 0 as a two-element range.
    ranges = [(MAX_SEQ_NO - 1, 0)]
    words = encode(ranges)
    assert words == [(MAX_SEQ_NO - 1) | RANGE_FLAG, 0]
    assert decode(words) == ranges


def test_wrap_boundary_singletons_roundtrip():
    # MAX_SEQ_NO-1 and 0 reported as separate single losses.
    ranges = [(MAX_SEQ_NO - 1, MAX_SEQ_NO - 1), (0, 0)]
    assert decode(encode(ranges)) == ranges


def test_reject_inverted_range():
    with pytest.raises(ValueError):
        encode([(10, 5)])


def test_reject_out_of_range_seq():
    with pytest.raises(ValueError):
        encode([(MAX_SEQ_NO, MAX_SEQ_NO)])


def test_decode_rejects_dangling_flag():
    with pytest.raises(ValueError):
        decode([5 | RANGE_FLAG])


def test_decode_rejects_flagged_end():
    with pytest.raises(ValueError):
        decode([5 | RANGE_FLAG, 9 | RANGE_FLAG])


@st.composite
def loss_ranges(draw):
    out = []
    pos = draw(st.integers(0, MAX_SEQ_NO - 1))
    for _ in range(draw(st.integers(1, 30))):
        pos = seq_inc(pos, draw(st.integers(2, 1000)))
        span = draw(st.integers(0, 500))
        out.append((pos, seq_inc(pos, span)))
        pos = seq_inc(pos, span)
    return out


@given(loss_ranges())
def test_roundtrip(ranges):
    assert decode(encode(ranges)) == ranges


@given(loss_ranges())
def test_compression_never_worse_than_two_words_per_event(ranges):
    assert len(encode(ranges)) <= 2 * len(ranges)
