"""Unit + property tests for the appendix loss-list data structure."""

from hypothesis import given, settings, strategies as st

from repro.udt.losslist import (
    NaiveLossList,
    ReceiverLossList,
    SenderLossList,
    _RangeList,
)
from repro.udt.params import MAX_SEQ_NO
from repro.udt.seqno import seq_inc


class TestRangeList:
    def test_paper_appendix_example(self):
        # Figure 16: losses 3, 4, 5 and 7 -> nodes (3,5) and (7,7).
        rl = _RangeList()
        rl.insert(3, 5)
        rl.insert(7, 7)
        assert list(rl.ranges()) == [(3, 5), (7, 7)]
        assert len(rl) == 4
        assert rl.events() == 2

    def test_adjacent_ranges_coalesce(self):
        rl = _RangeList()
        rl.insert(3, 5)
        rl.insert(6, 8)
        assert list(rl.ranges()) == [(3, 8)]
        assert rl.events() == 1

    def test_overlapping_insert_counts_only_new(self):
        rl = _RangeList()
        assert rl.insert(3, 10) == 8
        assert rl.insert(5, 12) == 2
        assert list(rl.ranges()) == [(3, 12)]

    def test_insert_bridging_many_nodes(self):
        rl = _RangeList()
        for start in (0, 10, 20, 30):
            rl.insert(start, start + 2)
        rl.insert(1, 31)
        assert list(rl.ranges()) == [(0, 32)]

    def test_remove_one_splits(self):
        rl = _RangeList()
        rl.insert(3, 7)
        assert rl.remove_one(5)
        assert list(rl.ranges()) == [(3, 4), (6, 7)]
        assert not rl.remove_one(5)  # already gone

    def test_remove_one_edges(self):
        rl = _RangeList()
        rl.insert(3, 7)
        rl.remove_one(3)
        rl.remove_one(7)
        assert list(rl.ranges()) == [(4, 6)]

    def test_remove_upto(self):
        rl = _RangeList()
        rl.insert(3, 7)
        rl.insert(10, 12)
        assert rl.remove_upto(10) == 6
        assert list(rl.ranges()) == [(11, 12)]

    def test_pop_first(self):
        rl = _RangeList()
        rl.insert(3, 4)
        assert rl.pop_first() == 3
        assert rl.pop_first() == 4
        assert rl.pop_first() is None

    def test_contains(self):
        rl = _RangeList()
        rl.insert(3, 7)
        assert rl.contains(3) and rl.contains(7) and rl.contains(5)
        assert not rl.contains(2) and not rl.contains(8)


@st.composite
def op_sequences(draw):
    ops = []
    n = draw(st.integers(1, 60))
    for _ in range(n):
        kind = draw(st.sampled_from(["insert", "remove_one", "remove_upto", "pop"]))
        if kind == "insert":
            a = draw(st.integers(0, 400))
            b = a + draw(st.integers(0, 30))
            ops.append(("insert", a, b))
        elif kind == "remove_one":
            ops.append(("remove_one", draw(st.integers(0, 430))))
        elif kind == "remove_upto":
            ops.append(("remove_upto", draw(st.integers(0, 430))))
        else:
            ops.append(("pop",))
    return ops


@given(op_sequences())
@settings(max_examples=200)
def test_rangelist_matches_set_model(ops):
    """The range list behaves exactly like a plain set of integers."""
    rl = _RangeList()
    model = set()
    for op in ops:
        if op[0] == "insert":
            _, a, b = op
            added = rl.insert(a, b)
            new = set(range(a, b + 1)) - model
            assert added == len(new)
            model |= set(range(a, b + 1))
        elif op[0] == "remove_one":
            _, x = op
            assert rl.remove_one(x) == (x in model)
            model.discard(x)
        elif op[0] == "remove_upto":
            _, x = op
            removed = rl.remove_upto(x)
            gone = {v for v in model if v <= x}
            assert removed == len(gone)
            model -= gone
        else:
            got = rl.pop_first()
            expect = min(model) if model else None
            assert got == expect
            model.discard(got) if got is not None else None
        # Invariants: count matches, ranges sorted/disjoint/non-adjacent.
        assert len(rl) == len(model)
        rs = list(rl.ranges())
        for (a1, b1), (a2, b2) in zip(rs, rs[1:]):
            assert b1 + 1 < a2
        for a, b in rs:
            assert a <= b


class TestSenderLossList:
    def test_priority_pop_order(self):
        sl = SenderLossList()
        sl.insert(10, 12)
        sl.insert(5)
        assert sl.pop() == 5
        assert sl.pop() == 10
        assert sl.pop() == 11

    def test_remove_upto_on_ack(self):
        sl = SenderLossList()
        sl.insert(10, 20)
        sl.remove_upto(15)
        assert sl.peek() == 16
        assert len(sl) == 5

    def test_wrap_around_range(self):
        sl = SenderLossList()
        top = MAX_SEQ_NO - 2
        sl.insert(top, seq_inc(top, 4))  # spans the wrap
        assert len(sl) == 5
        assert sl.pop() == top
        got = [sl.pop() for _ in range(4)]
        assert got == [MAX_SEQ_NO - 1, 0, 1, 2]

    def test_inverted_range_rejected(self):
        import pytest

        sl = SenderLossList()
        with pytest.raises(ValueError):
            sl.insert(10, 5)

    def test_contains(self):
        sl = SenderLossList()
        sl.insert(7, 9)
        assert sl.contains(8)
        assert not sl.contains(6)


class TestReceiverLossList:
    def test_insert_and_first(self):
        rl = ReceiverLossList()
        rl.insert(100, 110, now=1.0)
        rl.insert(50, now=1.0)
        assert rl.first() == 50

    def test_remove_on_retransmission(self):
        rl = ReceiverLossList()
        rl.insert(5, 9, now=0.0)
        assert rl.remove(7)
        assert rl.ranges() == [(5, 6), (8, 9)]
        assert not rl.remove(7)

    def test_expired_ranges_backoff(self):
        rl = ReceiverLossList()
        rl.insert(5, 9, now=0.0)
        rtt = 0.1
        # first resend due after 2*(rtt+SYN) = 0.22 (a NAKed
        # retransmission needs a full RTT to arrive)
        assert rl.expired_ranges(0.10, rtt) == []
        assert rl.expired_ranges(0.23, rtt) == [(5, 9)]
        # second resend needs a LONGER interval: 3*(rtt+SYN) from 0.23
        assert rl.expired_ranges(0.50, rtt) == []
        assert rl.expired_ranges(0.60, rtt) == [(5, 9)]

    def test_feedback_state_garbage_collected(self):
        rl = ReceiverLossList()
        rl.insert(5, 9, now=0.0)
        rl.remove_upto(9)
        assert rl.expired_ranges(10.0, 0.1) == []
        assert rl._feedback == {}


class TestNaiveLossList:
    def test_same_semantics_as_range_list(self):
        nl = NaiveLossList()
        nl.insert(3, 7)
        assert len(nl) == 5
        assert nl.pop() == 3
        assert nl.contains(4)
        nl.remove_upto(5)
        assert len(nl) == 2
