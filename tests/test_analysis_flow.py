"""Tests for the CFG + forward dataflow framework (repro.analysis.flow)."""

import ast
import textwrap

from repro.analysis.flow import (
    TaintTracker,
    assign_pairs,
    build_cfg,
    join_states,
    var_key,
)


def _fn(src):
    return ast.parse(textwrap.dedent(src)).body[0]


def _node(cfg, snippet):
    """The unique stmt node whose source starts with ``snippet``."""
    hits = [
        n
        for n in cfg.stmt_nodes()
        if ast.unparse(n.stmt).startswith(snippet)
    ]
    assert len(hits) == 1, (snippet, [ast.unparse(n.stmt) for n in hits])
    return hits[0]


# -- CFG shapes -----------------------------------------------------------


def test_cfg_if_else_diamond():
    cfg = build_cfg(
        _fn(
            """
            def f(x):
                a = 1
                if x:
                    b = 2
                else:
                    c = 3
                d = 4
            """
        )
    )
    head = _node(cfg, "if x:")
    b = _node(cfg, "b = 2")
    c = _node(cfg, "c = 3")
    d = _node(cfg, "d = 4")
    assert sorted(head.succs) == sorted([b.idx, c.idx])
    assert sorted(d.preds) == sorted([b.idx, c.idx])
    assert cfg.exit in cfg.nodes[d.idx].succs


def test_cfg_if_without_else_falls_through():
    cfg = build_cfg(
        _fn(
            """
            def f(x):
                if x:
                    a = 1
                b = 2
            """
        )
    )
    head = _node(cfg, "if x:")
    a = _node(cfg, "a = 1")
    b = _node(cfg, "b = 2")
    # Both the taken branch and the skip edge reach the join statement.
    assert sorted(b.preds) == sorted([head.idx, a.idx])


def test_cfg_while_back_edge_break_and_exit():
    cfg = build_cfg(
        _fn(
            """
            def f(x):
                while x:
                    x = step(x)
                    if x:
                        break
                done = 1
            """
        )
    )
    head = _node(cfg, "while x:")
    body = _node(cfg, "x = step(x)")
    branch = _node(cfg, "if x:")
    brk = _node(cfg, "break")
    done = _node(cfg, "done = 1")
    assert head.idx in cfg.nodes[body.idx].preds  # loop entry
    assert branch.idx in cfg.nodes[head.idx].preds  # back edge
    # Loop exits via the head test or via break, both landing on `done`.
    assert sorted(done.preds) == sorted([head.idx, brk.idx])


def test_cfg_try_edges_every_body_stmt_into_handler():
    cfg = build_cfg(
        _fn(
            """
            def f(x):
                try:
                    a = risky(x)
                    b = more(a)
                except ValueError:
                    h = 1
                tail = 2
            """
        )
    )
    a = _node(cfg, "a = risky(x)")
    b = _node(cfg, "b = more(a)")
    h = _node(cfg, "h = 1")
    tail = _node(cfg, "tail = 2")
    marker = next(n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Pass))
    # Conservative: any body statement may raise into the handler.
    assert a.idx in marker.preds and b.idx in marker.preds
    assert marker.idx in cfg.nodes[h.idx].preds
    assert sorted(tail.preds) == sorted([b.idx, h.idx])


def test_cfg_return_terminates_flow_and_unreaches_tail():
    tracker = TaintTracker()
    cfg, in_states = tracker.analyse(
        _fn(
            """
            def f(x):
                return x
                dead = 1
            """
        )
    )
    ret = _node(cfg, "return x")
    dead = _node(cfg, "dead = 1")
    assert cfg.exit in cfg.nodes[ret.idx].succs
    assert in_states.get(dead.idx) is None  # no IN state: unreachable


# -- taint propagation ----------------------------------------------------


class _Tracker(TaintTracker):
    """Toy semantics: names starting with ``src`` are tainted; ``clean()``
    sanitizes; any other call passes the union of its argument labels."""

    def atom_labels(self, node, state):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and name.startswith("src"):
            return frozenset({"T"})
        return frozenset()

    def call_labels(self, node, arg_labels, state):
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
        if fname == "clean":
            return frozenset()
        out = frozenset()
        for labels in arg_labels:
            out |= labels
        return out


def _in_state_at(src, snippet):
    cfg, in_states = _Tracker().analyse(_fn(src))
    return in_states[_node(cfg, snippet).idx]


def test_taint_propagates_through_assignment_chain():
    state = _in_state_at(
        """
        def f():
            a = src_val
            b = a
            c = clean(b)
            d = b + 1
            end = 0
        """,
        "end = 0",
    )
    assert state["a"] == state["b"] == frozenset({"T"})
    assert state["c"] == frozenset()  # sanitized
    assert state["d"] == frozenset({"T"})  # BinOp unions by default


def test_taint_tuple_unpacking_and_augassign():
    state = _in_state_at(
        """
        def f(src_pair):
            x, y = src_pair
            a, b = src_val, 1
            acc = 0
            acc += src_val
            end = 0
        """,
        "end = 0",
    )
    assert state["x"] == state["y"] == frozenset({"T"})
    assert state["a"] == frozenset({"T"}) and state["b"] == frozenset()
    assert state["acc"] == frozenset({"T"})


def test_taint_joins_at_branch_merge():
    state = _in_state_at(
        """
        def f(cond):
            x = 1
            if cond:
                x = src_val
            end = 0
        """,
        "end = 0",
    )
    assert state["x"] == frozenset({"T"})  # union of both paths


def test_taint_loop_fixpoint_carries_across_iterations():
    # y only becomes tainted on the *second* trip around the loop: the
    # worklist must iterate to a fixpoint, not make one pass.
    state = _in_state_at(
        """
        def f(n):
            y = 0
            while n:
                y = x_prev
                x_prev = src_val
            end = 0
        """,
        "end = 0",
    )
    assert state["y"] == frozenset({"T"})


def test_taint_for_target_with_binding_and_self_attrs():
    state = _in_state_at(
        """
        def f(self, src_items, src_obj):
            for it in src_items:
                pass
            with src_obj as s:
                pass
            self.cache = src_val
            v = self.cache
            end = 0
        """,
        "end = 0",
    )
    assert state["it"] == frozenset({"T"})
    assert state["s"] == frozenset({"T"})
    assert state["self.cache"] == state["v"] == frozenset({"T"})


def test_taint_delete_clears_binding():
    state = _in_state_at(
        """
        def f():
            a = src_val
            del a
            end = 0
        """,
        "end = 0",
    )
    assert "a" not in state


# -- helpers --------------------------------------------------------------


def test_var_key_shapes():
    def key_of(src):
        return var_key(ast.parse(src, mode="eval").body)

    assert key_of("x") == "x"
    assert key_of("self.attr") == "self.attr"
    assert key_of("obj.attr") is None  # only self.* pseudo-locals
    assert key_of("x[0]") is None


def test_assign_pairs_parallel_and_broadcast():
    stmt = ast.parse("a, b = f(), g()").body[0]
    pairs = assign_pairs(stmt.targets, stmt.value)
    assert [ast.unparse(t) for t, _ in pairs] == ["a", "b"]
    assert [ast.unparse(v) for _, v in pairs] == ["f()", "g()"]
    stmt = ast.parse("a, b = pair").body[0]
    pairs = assign_pairs(stmt.targets, stmt.value)
    assert [ast.unparse(v) for _, v in pairs] == ["pair", "pair"]


def test_join_states_is_keywise_union():
    a = {"x": frozenset({"T"})}
    b = {"x": frozenset({"U"}), "y": frozenset({"T"})}
    j = join_states(a, b)
    assert j == {"x": frozenset({"T", "U"}), "y": frozenset({"T"})}
