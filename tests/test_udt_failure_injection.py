"""Failure-injection tests: the protocol survives hostile control planes.

Each test wraps an endpoint's transmit path with a fault injector
(dropping, duplicating or reordering specific message types) and checks
the transfer still completes exactly once.
"""

import random

from repro.sim.topology import path_topology
from repro.udt import start_udt_flow


def wrap_transmit(core, fault):
    """Interpose ``fault(msg, size, forward)`` on a core's transmit."""
    original = core._transmit

    def wrapped(msg, size):
        fault(msg, size, original)

    core._transmit = wrapped


def test_handshake_response_lost_then_retried():
    top = path_topology(10e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=50_000)
    dropped = {"n": 0}

    def fault(msg, size, forward):
        if msg.type_name == "handshake" and dropped["n"] < 2:
            dropped["n"] += 1
            return  # eat the first two handshake replies
        forward(msg, size)

    wrap_transmit(f.receiver, fault)
    top.net.run(until=10.0)
    assert dropped["n"] == 2
    assert f.done and f.delivered_bytes == 50_000


def test_all_naks_dropped_exp_timer_recovers():
    top = path_topology(10e6, 0.02, loss_rate=0.01, seed=2)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=300_000)

    def fault(msg, size, forward):
        if msg.type_name == "nak":
            return
        forward(msg, size)

    wrap_transmit(f.receiver, fault)
    top.net.run(until=120.0)
    assert f.done and f.delivered_bytes == 300_000
    assert f.sender.stats.naks_received == 0
    assert f.sender.stats.exp_events > 0  # EXP did the recovery


def test_every_second_ack_dropped():
    top = path_topology(10e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=400_000)
    counter = {"n": 0}

    def fault(msg, size, forward):
        if msg.type_name == "ack":
            counter["n"] += 1
            if counter["n"] % 2 == 0:
                return
        forward(msg, size)

    wrap_transmit(f.receiver, fault)
    top.net.run(until=30.0)
    assert f.done and f.delivered_bytes == 400_000


def test_ack2_blackhole_keeps_default_rtt():
    top = path_topology(10e6, 0.05)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=200_000)

    def fault(msg, size, forward):
        if msg.type_name == "ack2":
            return
        forward(msg, size)

    wrap_transmit(f.sender, fault)
    top.net.run(until=30.0)
    assert f.done and f.delivered_bytes == 200_000


def test_duplicated_data_is_delivered_once():
    top = path_topology(10e6, 0.02, seed=5)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=150_000)
    rng = random.Random(0)

    def fault(msg, size, forward):
        forward(msg, size)
        if msg.type_name == "data" and rng.random() < 0.2:
            forward(msg, size)  # duplicate 20% of data packets

    wrap_transmit(f.sender, fault)
    top.net.run(until=30.0)
    assert f.done
    assert f.delivered_bytes == 150_000
    assert f.receiver.rcv_buffer.duplicates > 0


def test_reordered_data_is_delivered_in_order():
    top = path_topology(10e6, 0.02, seed=7)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=150_000)
    held = []
    rng = random.Random(1)

    def fault(msg, size, forward):
        if msg.type_name == "data" and rng.random() < 0.1 and not held:
            held.append((msg, size))  # hold one packet back...
            return
        forward(msg, size)
        if held and rng.random() < 0.5:
            m, s = held.pop()
            forward(m, s)  # ...and release it late (out of order)

    wrap_transmit(f.sender, fault)
    sizes = []
    inner = f.receiver.rcv_buffer._deliver

    def tap(size, data):
        inner(size, data)
        sizes.append(size)

    f.receiver.rcv_buffer._deliver = tap
    top.net.run(until=60.0)
    assert f.done
    assert sum(sizes) == 150_000


def test_corrupt_nak_report_is_ignored():
    from repro.udt.packets import Nak

    top = path_topology(10e6, 0.02)
    f = start_udt_flow(top.net, top.src, top.dst, nbytes=100_000)
    top.net.run(until=1.0)
    # Inject a NAK whose report is syntactically invalid.
    f.sender.on_datagram(Nak(loss=[5 | (1 << 31)]), 20)  # dangling flag
    top.net.run(until=10.0)
    assert f.done and f.delivered_bytes == 100_000
