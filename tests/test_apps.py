"""Integration tests for the application layer (bulk, fileio, join)."""

import pytest

from repro.apps.bulk import UdpBlast
from repro.apps.fileio import DiskTransfer
from repro.apps.streaming_join import StreamingJoin, run_streaming_join
from repro.hostmodel.disk import DiskModel
from repro.sim.topology import join_topology, path_topology
from repro.sim.udp import UdpEndpoint
from repro.tcp import TcpFlow
from repro.udt.sim_adapter import UdtFlow


class TestUdpBlast:
    def test_sends_at_configured_rate(self):
        top = path_topology(100e6, 0.01)
        sink = UdpEndpoint(top.dst, 9)
        got = []
        sink.on_receive(lambda p, a, s: got.append(s))
        UdpBlast(top.net, top.src, sink.address, rate_bps=10e6, on_time=1.0)
        top.net.run(until=1.0)
        # ~10 Mb/s of 1500B packets for 1s = ~833 packets
        assert 700 < len(got) < 950

    def test_on_off_duty_cycle(self):
        top = path_topology(100e6, 0.01)
        sink = UdpEndpoint(top.dst, 9)
        got = []
        sink.on_receive(lambda p, a, s: got.append(top.net.sim.now))
        UdpBlast(
            top.net, top.src, sink.address, rate_bps=10e6,
            on_time=0.1, off_time=0.4, stop=1.0,
        )
        top.net.run(until=1.0)
        # two bursts in [0, 0.1] and [0.5, 0.6]
        assert any(t < 0.2 for t in got)
        assert any(0.45 < t < 0.7 for t in got)
        assert not any(0.2 < t < 0.45 for t in got)

    def test_invalid_params(self):
        top = path_topology(1e6, 0.01)
        with pytest.raises(ValueError):
            UdpBlast(top.net, top.src, (0, 1), rate_bps=0)


class TestStreamingJoin:
    def test_balanced_streams_all_join(self):
        j = StreamingJoin(record_size=100, window=64)
        for _ in range(50):
            j.on_bytes("a", 100)
            j.on_bytes("b", 100)
        assert j.stats.joined == 50
        assert j.stats.expired == 0

    def test_rate_mismatch_expires_records(self):
        j = StreamingJoin(record_size=100, window=10)
        j.on_bytes("b", 100 * 200)  # b races far ahead
        j.on_bytes("a", 100 * 5)  # a only delivers 5 records
        # a's records 0..4 fell out of b's window long ago
        assert j.stats.joined == 0
        assert j.stats.expired > 0

    def test_reframing_partial_chunks(self):
        j = StreamingJoin(record_size=100, window=16)
        j.on_bytes("a", 250)
        assert j.stats.records_a == 2
        j.on_bytes("a", 50)
        assert j.stats.records_a == 3

    def test_join_throughput_tracks_slower_stream(self):
        # UDT on the Figure 1 topology (scaled): both streams fair-share,
        # join rate ~ 2x min(A, B).
        top = join_topology(rate_bps=50e6, rtt_a=0.05, rtt_b=0.005)
        join, fa, fb = run_streaming_join(
            top,
            lambda net, s, d, fid: UdtFlow(net, s, d, flow_id=fid),
            duration=10.0,
            window=8192,
        )
        ra = fa.throughput_bps(3, 10)
        rb = fb.throughput_bps(3, 10)
        join_bps = join.stats.joined_bytes(1456) * 8 / 10.0
        assert join_bps <= 2 * min(ra, rb) * 1.1
        assert join_bps > 0.5 * min(ra, rb)

    def test_invalid_stream_name(self):
        with pytest.raises(ValueError):
            StreamingJoin().on_bytes("c", 10)


class TestDiskTransfer:
    def test_disk_write_is_bottleneck(self):
        top = path_topology(100e6, 0.01)
        fast = DiskModel("fast", read_bps=90e6, write_bps=85e6)
        slow = DiskModel("slow", read_bps=90e6, write_bps=30e6)
        xfer = DiskTransfer(top.net, top.src, top.dst, fast, slow, nbytes=20_000_000)
        top.net.run(until=30.0)
        assert xfer.done
        thr = xfer.effective_throughput_bps()
        assert thr == pytest.approx(30e6, rel=0.25)

    def test_disk_read_is_bottleneck(self):
        top = path_topology(100e6, 0.01)
        slow_read = DiskModel("sr", read_bps=25e6, write_bps=90e6)
        fast = DiskModel("f", read_bps=90e6, write_bps=90e6)
        xfer = DiskTransfer(top.net, top.src, top.dst, slow_read, fast, nbytes=10_000_000)
        top.net.run(until=30.0)
        assert xfer.done
        assert xfer.effective_throughput_bps() == pytest.approx(25e6, rel=0.25)

    def test_network_is_bottleneck(self):
        top = path_topology(20e6, 0.01)
        fast = DiskModel("f", read_bps=500e6, write_bps=500e6)
        xfer = DiskTransfer(top.net, top.src, top.dst, fast, fast, nbytes=10_000_000)
        top.net.run(until=30.0)
        assert xfer.done
        assert xfer.effective_throughput_bps() == pytest.approx(19e6, rel=0.15)

    def test_exact_delivery(self):
        top = path_topology(50e6, 0.01)
        d = DiskModel("d", read_bps=40e6, write_bps=40e6)
        xfer = DiskTransfer(top.net, top.src, top.dst, d, d, nbytes=5_000_000)
        top.net.run(until=20.0)
        assert xfer.delivered_bytes == 5_000_000

    def test_rejects_zero_bytes(self):
        top = path_topology(50e6, 0.01)
        d = DiskModel("d", read_bps=1e6, write_bps=1e6)
        with pytest.raises(ValueError):
            DiskTransfer(top.net, top.src, top.dst, d, d, nbytes=0)
