"""Live sweep telemetry: worker heartbeats, the progress board, the feed.

The reporter is tested against a real engine run (the frame-inspection
event counter has no other honest test) and with a stub simulator for
the rate/ETA arithmetic; the board and ``read_progress`` are pure
record-folding and test directly.  The end-to-end ``sweep --progress``
path (subprocess pipe included) lives in the slow tier with the other
subprocess sweeps.
"""

import io
import json
import time

import pytest

from repro.runner.progress import (
    HEARTBEAT,
    ProgressBoard,
    ProgressReporter,
    default_progress_path,
    read_progress,
)

SCALE = 0.05


def _tiny_run():
    from repro.sim.topology import path_topology
    from repro.udt import start_udt_flow

    top = path_topology(20e6, 0.01)
    start_udt_flow(top.net, top.src, top.dst)
    top.net.run(until=2.0)
    return top.net.sim


class TestReporter:
    def test_patch_is_restored(self):
        from repro.sim import engine

        orig = engine.Simulator.run
        rep = ProgressReporter("x", interval=10.0, out=io.StringIO())
        with rep:
            assert engine.Simulator.run is not orig
        assert engine.Simulator.run is orig

    def test_double_start_rejected(self):
        rep = ProgressReporter("x", interval=10.0, out=io.StringIO())
        with rep:
            with pytest.raises(RuntimeError):
                rep.start()

    def test_events_accumulate_across_runs(self):
        rep = ProgressReporter("x", interval=10.0, out=io.StringIO())
        with rep:
            sim1 = _tiny_run()
            sim2 = _tiny_run()
            rec = rep.sample()
        assert rec["kind"] == HEARTBEAT and rec["exp"] == "x"
        assert rec["events"] == sim1.events_processed + sim2.events_processed
        assert rec["events"] > 1000
        assert "vt" not in rec  # no simulator running at sample time

    def test_rate_and_eta_from_stub_sim(self):
        class Stub:
            now = 1.0
            events_processed = 0

        rep = ProgressReporter("x", interval=10.0, out=io.StringIO())
        rep._cur_sim = Stub()
        rep._cur_until = 5.0
        first = rep.sample()
        assert first["vt"] == 1.0 and first["vt_end"] == 5.0
        Stub.now = 2.0
        rep._events_done = 50_000
        time.sleep(0.1)  # a measurable wall delta
        second = rep.sample()
        assert second["eps"] > 0
        # 3 virtual seconds left at 1 virtual second per wall interval
        dw = second["wall"] - first["wall"]
        assert second["eta"] == pytest.approx(3.0 * dw, abs=0.1)

    def test_heartbeat_thread_writes_json_lines(self):
        out = io.StringIO()
        with ProgressReporter("x", interval=0.02, out=out):
            time.sleep(0.1)
        lines = [l for l in out.getvalue().splitlines() if l]
        assert lines, "no heartbeat emitted"
        for line in lines:
            rec = json.loads(line)
            assert rec["kind"] == HEARTBEAT


class TestBoard:
    def _feed(self, path):
        board = ProgressBoard(path=path, line_interval=0.0)
        board.sweep_begin("fig02", 0.05, 2, pending=["fig02"], cached=["fig09"])
        board.worker_start("fig02")
        board.heartbeat(
            "fig02",
            {"kind": HEARTBEAT, "exp": "fig02", "wall": 1.0, "events": 1000,
             "vt": 2.0, "vt_end": 5.0, "eps": 1000, "eta": 3.0},
        )
        board.worker_done("fig02", 2.5)
        board.sweep_end(3.0, executed=1, failed=0)
        return board

    def test_records_are_stamped_and_appended(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        self._feed(path)
        recs = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = [r["kind"] for r in recs]
        assert kinds == [
            "sweep.begin", "sweep.worker_start", HEARTBEAT,
            "sweep.worker_done", "sweep.end",
        ]
        assert all("ts" in r for r in recs)

    def test_begin_truncates_previous_feed(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        path.write_text("stale\n")
        ProgressBoard(path=path)
        assert path.read_text() == ""

    def test_status_lines_are_rate_limited(self, tmp_path):
        lines = []
        board = ProgressBoard(
            path=tmp_path / "p.jsonl", emit=lines.append, line_interval=60.0
        )
        hb = {"kind": HEARTBEAT, "exp": "fig02", "wall": 1.0, "events": 10}
        board.heartbeat("fig02", hb)
        board.heartbeat("fig02", hb)
        assert len(lines) == 1  # second one suppressed
        board.heartbeat("fig08", dict(hb, exp="fig08"))
        assert len(lines) == 2  # per-experiment limiter

    def test_format_line_renders_frontier_and_eta(self):
        line = ProgressBoard.format_line(
            "fig02",
            {"vt": 2.0, "vt_end": 5.0, "eps": 209_000, "events": 89_000,
             "eta": 1.2, "wall": 0.4},
        )
        assert "[progress] fig02" in line
        assert "vt   2.000/5.000s ( 40%)" in line
        assert "209k ev/s" in line and "89k events" in line
        assert "eta 1s" in line and "wall 0.4s" in line

    def test_read_progress_folds_the_feed(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        self._feed(path)
        view = read_progress(path)
        assert view["begin"]["selector"] == "fig02"
        assert view["end"]["executed"] == 1
        w = view["workers"]["fig02"]
        assert w["status"] == "done" and w["seconds"] == 2.5
        assert w["last"]["vt"] == 2.0
        assert view["ts"] is not None

    def test_read_progress_failed_and_running(self, tmp_path):
        path = tmp_path / "p.jsonl"
        board = ProgressBoard(path=path)
        board.sweep_begin("all", 0.05, 2, pending=["a", "b"], cached=[])
        board.worker_start("a")
        board.worker_start("b")
        board.worker_failed("a", "boom")
        view = read_progress(path)
        assert view["end"] is None  # still live
        assert view["workers"]["a"]["status"] == "failed"
        assert view["workers"]["a"]["error"] == "boom"
        assert view["workers"]["b"]["status"] == "running"

    def test_read_progress_missing_or_empty_is_none(self, tmp_path):
        assert read_progress(tmp_path / "nope.jsonl") is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert read_progress(empty) is None

    def test_read_progress_tolerates_mid_write_truncation(self, tmp_path):
        path = tmp_path / "p.jsonl"
        self._feed(path)
        with open(path, "a") as f:
            f.write('{"kind":"sweep.heartb')  # torn final line
        view = read_progress(path)
        assert view["workers"]["fig02"]["status"] == "done"

    def test_default_progress_path_lives_in_cache_dir(self, tmp_path):
        assert default_progress_path(tmp_path) == tmp_path / "progress.jsonl"


@pytest.mark.slow
class TestSweepProgressEndToEnd:
    def test_progress_feed_records_worker_lifecycle(self, tmp_path):
        from repro.runner.sweep import run_sweep

        feed = tmp_path / "progress.jsonl"
        report = run_sweep(
            only=["fig09"], jobs=1, scale=SCALE,
            cache_dir=tmp_path / "cache", progress_path=feed,
        )
        assert report.ok
        kinds = [
            json.loads(l)["kind"] for l in feed.read_text().splitlines()
        ]
        assert kinds[0] == "sweep.begin" and kinds[-1] == "sweep.end"
        assert "sweep.worker_start" in kinds
        assert "sweep.worker_done" in kinds
        view = read_progress(feed)
        assert view["workers"]["fig09"]["status"] == "done"
