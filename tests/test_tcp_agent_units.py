"""Focused unit tests for TCP sender mechanics (RTO, Karn, app-limited)."""

import pytest

from repro.sim.topology import path_topology
from repro.tcp import TcpConfig, start_tcp_flow
from repro.tcp.agent import TcpAck, TcpData, TcpSender, TcpSink, _Port


def make_sender(rate=10e6, rtt=0.02, **cfg):
    top = path_topology(rate, rtt)
    sink = TcpSink(top.dst, TcpConfig(**cfg))
    snd = TcpSender(top.src, sink.address, TcpConfig(**cfg))
    sink.src_addr = snd.port.address
    return top, snd, sink


class TestRto:
    def test_rto_doubles_on_timeout(self):
        top, snd, sink = make_sender()
        sink.port.handler = lambda seg: None  # receiver is silent
        snd.start()
        rto0 = snd.rto
        top.net.run(until=rto0 + 0.1)
        assert snd.stats.timeouts == 1
        assert snd.rto == pytest.approx(rto0 * 2)

    def test_rto_floor_and_ceiling(self):
        top, snd, sink = make_sender(min_rto=0.3, max_rto=1.0)
        snd._rtt_update(0.001)
        assert snd.rto == 0.3
        snd.rto = 0.9
        snd._on_rto()  # doubling clamps at max_rto
        assert snd.rto <= 1.0

    def test_rtt_sample_updates_srtt(self):
        top, snd, sink = make_sender()
        snd._rtt_update(0.1)
        assert snd.srtt == pytest.approx(0.1)
        snd._rtt_update(0.2)
        assert 0.1 < snd.srtt < 0.2

    def test_karn_no_sample_from_retransmission(self):
        top, snd, sink = make_sender()
        snd.start()
        top.net.run(until=0.1)
        # Force a retransmission of seq 0 and verify its send-time record
        # was discarded (no RTT sample can come from it).
        snd.board._mark_lost(snd.snd_una)
        snd._send_times[snd.snd_una] = 123.0
        snd._try_send()
        assert snd.snd_una not in snd._send_times


class TestAppLimited:
    def test_push_app_data_gates_sending(self):
        top, snd, sink = make_sender()
        snd.app_limited = True
        snd.start()
        top.net.run(until=0.5)
        assert snd.snd_nxt == 0  # nothing offered yet
        snd.push_app_data(5 * snd.config.payload_size)
        top.net.run(until=1.0)
        assert snd.snd_nxt == 5

    def test_partial_payload_waits_for_full_packet(self):
        top, snd, sink = make_sender()
        snd.push_app_data(snd.config.payload_size // 2)
        top.net.run(until=0.5)
        assert snd.snd_nxt == 0
        snd.push_app_data(snd.config.payload_size)
        top.net.run(until=1.0)
        assert snd.snd_nxt == 1


class TestSinkAcks:
    def test_ack_carries_rwnd(self):
        top = path_topology(10e6, 0.02)
        f = start_tcp_flow(top.net, top.src, top.dst, config=TcpConfig(rwnd_pkts=64))
        top.net.run(until=2.0)
        assert f.sender.rwnd <= 64

    def test_sack_blocks_capped(self):
        top, snd, sink = make_sender(max_sack_blocks=2)
        # create three separate holes at the sink
        for seq in (1, 3, 5):
            sink._on_data(TcpData(seq, 100))
        assert len(sink._sack_blocks()) <= 2

    def test_most_recent_block_first(self):
        top, snd, sink = make_sender()
        sink._on_data(TcpData(5, 100))
        sink._on_data(TcpData(2, 100))
        blocks = sink._sack_blocks()
        assert blocks[0] == (2, 2)  # the block containing the last arrival


class TestPortPlumbing:
    def test_port_auto_allocation_and_close(self):
        top = path_topology(10e6, 0.02)
        p1 = _Port(top.src)
        p2 = _Port(top.src)
        assert p1.port != p2.port
        p1.close()
        p3 = _Port(top.src, p1.port)  # reusable after close
        assert p3.port == p1.port

    def test_done_sender_ignores_acks(self):
        top, snd, sink = make_sender()
        snd.done = True
        snd._on_ack(TcpAck(5, (), 100))
        assert snd.stats.acks_received == 0
