"""Tests for the protocol model extraction + trace conformance checker."""

import json

import pytest

from repro.analysis.conformance import check_trace
from repro.analysis.protomodel import (
    default_model_path,
    extract_model,
    load_model,
    main as protomodel_main,
    render_model,
)

_META = {"kind": "trace.meta", "schema": 1}


# -- model extraction -----------------------------------------------------


def test_committed_model_matches_extraction():
    """analysis/protocol_model.json is generated, reviewed, committed —
    and must never drift from what udt/core.py's guards actually imply."""
    committed = default_model_path().read_text(encoding="utf-8")
    assert committed == render_model(extract_model())


def test_protomodel_check_cli():
    assert protomodel_main(["--check"]) == 0


def test_model_constraint_shapes():
    model = load_model()
    by_type = {}
    for c in model["constraints"]:
        by_type.setdefault(c["type"], []).append(c)
    unique = {c["kind"] for c in by_type["unique"]}
    assert {"conn.connected", "conn.closed"} <= unique
    assert "conn.closed" in {c["kind"] for c in by_type["terminal"]}
    rp = {c["kind"]: c["prior"] for c in by_type["requires_prior"]}
    # Every guarded emit requires the handshake first.
    assert set(rp.values()) == {"conn.connected"}
    assert {"pkt.snd", "snd.ack", "snd.nak", "exp.timeout"} <= set(rp)
    # Honesty check: kinds reachable outside the guarded core paths
    # (DelayWarningCC's monkeypatched tap) must NOT be claimed.
    assert "cc.delay_warning" not in rp and "cc.slowstart_exit" not in rp


# -- synthetic traces -----------------------------------------------------


def _write_jsonl(path, events):
    with open(path, "w", encoding="utf-8") as f:
        for rec in [_META] + events:
            f.write(json.dumps(rec) + "\n")


def _evt(t, kind, src):
    return {"t": t, "kind": kind, "src": src}


def test_requires_prior_violation_with_context():
    events = [
        _evt(0.0, "conn.connected", "a"),
        _evt(0.1, "pkt.snd", "a"),
        _evt(0.2, "pkt.snd", "b"),  # b never connected
    ]
    import tempfile, os

    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "t.jsonl")
        _write_jsonl(path, events)
        report = check_trace(path)
    assert not report.ok and len(report.violations) == 1
    v = report.violations[0]
    assert (v.index, v.src, v.constraint) == (2, "b", "requires_prior")
    assert "conn.connected" in v.message


def test_unique_and_terminal_violations(tmp_path):
    events = [
        _evt(0.0, "conn.connected", "a"),
        _evt(0.1, "conn.connected", "a"),  # duplicate
        _evt(0.2, "conn.closed", "a"),
        _evt(0.3, "pkt.snd", "a"),  # after terminal close
    ]
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, events)
    report = check_trace(str(path))
    assert [v.constraint for v in report.violations] == ["unique", "terminal"]
    assert [v.index for v in report.violations] == [1, 3]
    # Violations carry the preceding same-src events as readable context.
    assert any("conn.closed" in line for line in report.violations[1].context)


def test_violation_cap_truncates(tmp_path):
    from repro.analysis.conformance import MAX_VIOLATIONS

    events = [_evt(i * 0.01, "pkt.snd", "a") for i in range(MAX_VIOLATIONS + 20)]
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, events)
    report = check_trace(str(path))
    assert len(report.violations) == MAX_VIOLATIONS and report.truncated
    assert "suppressed" in report.format()


def test_report_json_shape(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, [_evt(0.0, "pkt.snd", "a")])
    d = check_trace(str(path)).to_dict()
    assert d["ok"] is False and d["violations"][0]["constraint"] == "requires_prior"
    assert d["events_checked"] == 1 and d["srcs"] == ["a"]


# -- real traced experiment (reduced fig02) -------------------------------


@pytest.fixture(scope="module")
def fig02_trace(tmp_path_factory):
    """One reduced single-RTT fig02 run recorded to the binary store.

    A single RTT point matters: the full grid replays udt+tcp dumbbells
    per RTT into one trace with *reused* flow ids, so ``conn.connected``
    legitimately repeats per src and uniqueness would (correctly) fire.
    """
    from repro.experiments import get_experiment
    from repro.experiments.common import traced

    path = tmp_path_factory.mktemp("conformance") / "fig02.rtrc"
    with traced(str(path), generator="pytest", experiments=["fig02"]):
        get_experiment("fig02").runner(duration=3.0, n_flows=4, rtts=(0.01,))
    return path


@pytest.mark.slow
def test_traced_fig02_conforms(fig02_trace):
    report = check_trace(str(fig02_trace))
    assert report.ok, report.format()
    assert report.events_checked > 100
    # 4 flows x (sender, receiver) endpoints.
    assert len(report.srcs) == 8


@pytest.mark.slow
def test_fig02_mutation_flagged_at_exact_index(fig02_trace, tmp_path):
    """Corrupt exactly one event kind in the real trace; the checker must
    report a violation anchored at exactly that stream index."""
    from repro.obs.export import read_events

    model = load_model()
    events = list(read_events(str(fig02_trace), kinds=frozenset(model["kinds"])))
    target = next(
        i
        for i, rec in enumerate(events)
        if rec["kind"] == "conn.connected" and rec["src"] == "f1-rcv"
    )
    mutated = [dict(rec) for rec in events]
    mutated[target]["kind"] = "pkt.rcv"  # the handshake record vanishes

    clean_path = tmp_path / "clean.jsonl"
    _write_jsonl(clean_path, events)
    assert check_trace(str(clean_path)).ok  # rewrite alone is innocent

    mut_path = tmp_path / "mutated.jsonl"
    _write_jsonl(mut_path, mutated)
    report = check_trace(str(mut_path))
    assert not report.ok
    first = report.violations[0]
    # The corrupted record itself is the first violation: pkt.rcv is a
    # guarded kind and f1-rcv now has no conn.connected before it.
    assert first.index == target
    assert (first.src, first.kind, first.constraint) == (
        "f1-rcv",
        "pkt.rcv",
        "requires_prior",
    )


@pytest.mark.slow
def test_cli_conform_subcommand(fig02_trace, tmp_path, capsys):
    from repro.cli import main

    assert main(["conform", str(fig02_trace)]) == 0
    assert "OK" in capsys.readouterr().out

    bad = tmp_path / "bad.jsonl"
    _write_jsonl(bad, [_evt(0.0, "pkt.snd", "x")])
    assert main(["conform", str(bad)]) == 1
    assert "before 'conn.connected'" in capsys.readouterr().out
