"""Timeline recorder + instrumented-stack integration tests."""

import json

import pytest

from repro.obs import (
    CC_SAMPLE,
    EXP_TIMEOUT,
    LINK_DROP,
    QUEUE_HIGHWATER,
    RCV_LOSS,
    SND_NAK,
    EventBus,
    TimelineRecorder,
    default_bus,
    trace_to_file,
)
from repro.sim.topology import dumbbell, path_topology
from repro.udt import start_udt_flow


def _traced_lossy_run(recorder=None, trace_path=None):
    """One UDT flow over a lossy 100 Mb/s path, fully instrumented."""
    ctxs = []
    if recorder is not None:
        recorder.attach()
    try:
        if trace_path is not None:
            ctx = trace_to_file(trace_path, generator="test")
            ctx.__enter__()
            ctxs.append(ctx)
        top = path_topology(100e6, 0.02, loss_rate=0.001)
        flow = start_udt_flow(top.net, top.src, top.dst)
        top.net.run(until=5.0)
        return flow
    finally:
        for ctx in ctxs:
            ctx.__exit__(None, None, None)
        if recorder is not None:
            recorder.detach()


class TestTimelineRecorder:
    def test_live_capture_has_cc_trajectory(self):
        rec = TimelineRecorder()
        flow = _traced_lossy_run(recorder=rec)
        snd, rcv = flow.sender.name, flow.receiver.name
        assert not default_bus().enabled  # detached cleanly
        assert snd in rec.connections()
        series = rec.series(snd)
        assert len(series) > 100  # ~1 sample per SYN over 5 s
        # fields are populated and dynamic
        rates = rec.rates(snd)
        assert rates[0][1] != rates[-1][1]
        assert any(s.rtt > 0 for s in series)
        assert any(s.bw_est > 0 for s in series)
        assert any(s.cwnd > 0 for s in series)
        # loss happened on a 0.1% lossy link -> NAK marks recorded
        assert rec.loss_times(snd) or rec.loss_times(rcv)
        assert rec.mean_rate_bps(snd) > 0

    def test_windows_series(self):
        rec = TimelineRecorder()
        flow = _traced_lossy_run(recorder=rec)
        w = rec.windows(flow.sender.name)
        assert w and all(len(row) == 3 for row in w)

    def test_jsonl_rebuild_matches_live(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        live = TimelineRecorder()
        flow = _traced_lossy_run(recorder=live, trace_path=path)
        rebuilt = TimelineRecorder.from_jsonl(path)
        assert rebuilt.connections() == live.connections()
        assert rebuilt.series(flow.sender.name) == live.series(flow.sender.name)
        assert rebuilt.marks == live.marks

    def test_context_manager_and_double_attach(self):
        rec = TimelineRecorder()
        with rec:
            assert default_bus().enabled
            with pytest.raises(RuntimeError):
                rec.attach()
        assert not default_bus().enabled

    def test_max_samples_cap(self):
        rec = TimelineRecorder(max_samples_per_conn=10)
        flow = _traced_lossy_run(recorder=rec)
        assert len(rec.series(flow.sender.name)) == 10


class TestInstrumentedStack:
    def test_congested_run_emits_drop_and_highwater(self):
        """Two flows into one 10 Mb/s bottleneck must overflow the queue:
        the trace shows queue drops, receiver holes and sender NAKs."""
        bus = default_bus()
        events = []
        sub = bus.subscribe(events.append)
        try:
            d = dumbbell(2, 10e6, 0.02, seed=1)
            for i in range(2):
                start_udt_flow(d.net, d.sources[i], d.sinks[i], flow_id=f"f{i}")
            d.net.run(until=8.0)
        finally:
            bus.unsubscribe(sub)
        kinds = {e.kind for e in events}
        assert QUEUE_HIGHWATER in kinds
        assert LINK_DROP in kinds
        assert RCV_LOSS in kinds
        assert SND_NAK in kinds
        assert CC_SAMPLE in kinds
        drop = next(e for e in events if e.kind == LINK_DROP)
        assert drop.fields["reason"] in ("queue", "loss")
        # high-water marks are monotone per link
        for link in {e.src for e in events if e.kind == QUEUE_HIGHWATER}:
            marks = [
                e.fields["pkts"] for e in events
                if e.kind == QUEUE_HIGHWATER and e.src == link
            ]
            assert marks == sorted(marks)

    def test_exp_timeout_event_on_dead_peer(self):
        """Kill the return path mid-flow: the sender's EXP timer events
        appear on the bus with escalating counts."""
        bus = EventBus()
        events = []
        bus.subscribe(events.append, kinds=(EXP_TIMEOUT,))
        top = path_topology(50e6, 0.02)
        flow = start_udt_flow(top.net, top.src, top.dst, bus=bus)
        top.net.run(until=2.0)
        # Silent death: no Shutdown packet reaches the sender (close()
        # would announce itself), so its EXP timer must escalate.
        flow.receiver.closed = True
        flow.receiver.connected = False
        top.net.run(until=12.0)
        assert events, "no EXP events recorded"
        counts = [e.fields["exp_count"] for e in events]
        assert counts == sorted(counts)
        assert all(e.fields["unacked"] > 0 for e in events)

    def test_private_bus_does_not_leak_to_default(self):
        bus = EventBus()
        mine, everyone = [], []
        bus.subscribe(mine.append)
        sub = default_bus().subscribe(everyone.append)
        try:
            top = path_topology(50e6, 0.02)
            start_udt_flow(top.net, top.src, top.dst, bus=bus)
            top.net.run(until=1.0)
        finally:
            default_bus().unsubscribe(sub)
        assert any(e.kind == CC_SAMPLE for e in mine)
        # links still use the default bus, but core events stayed private
        assert not any(e.kind == CC_SAMPLE for e in everyone)

    def test_cpu_meter_emits_aggregated_charges(self):
        from repro.hostmodel.cpu import UDT_SENDER_COSTS, CpuMeter
        from repro.obs import CPU_CHARGE

        bus = EventBus()
        events = []
        bus.subscribe(events.append, kinds=(CPU_CHARGE,))
        clock = [0.0]
        meter = CpuMeter(
            UDT_SENDER_COSTS, lambda: clock[0], bus=bus, name="m", emit_every=10
        )
        for i in range(35):
            clock[0] += 0.001
            meter.on_data_sent(1500)
        assert len(events) == 3  # 35 // 10
        assert events[-1].fields["total_cycles"] == pytest.approx(
            meter.total_cycles, rel=0.2
        )
        assert events[0].fields["util"] > 0


class TestCcEvents:
    def test_slow_start_exit_and_decrease_events(self):
        from repro.obs import CC_DECREASE, CC_SLOWSTART_EXIT

        bus = EventBus()
        events = []
        bus.subscribe(events.append, kinds=(CC_SLOWSTART_EXIT, CC_DECREASE))
        top = path_topology(10e6, 0.02)  # tight link -> guaranteed loss
        start_udt_flow(top.net, top.src, top.dst, bus=bus)
        top.net.run(until=10.0)
        kinds = [e.kind for e in events]
        assert CC_SLOWSTART_EXIT in kinds
        assert CC_DECREASE in kinds
        dec = next(e for e in events if e.kind == CC_DECREASE)
        assert dec.fields["trigger"] in ("loss", "timeout")
        assert dec.src.endswith("-snd")

    def test_delay_warning_event(self):
        from repro.obs import CC_DELAY_WARNING
        from repro.udt.delaycc import DelayWarningCC
        from repro.udt.params import UdtConfig

        bus = EventBus()
        events = []
        bus.subscribe(events.append, kinds=(CC_DELAY_WARNING,))
        cc = DelayWarningCC(UdtConfig())

        class Ctx:
            def now(self):
                return 1.0

            rtt = 0.01
            recv_rate = 100.0
            bandwidth = 0.0
            max_seq_sent = 5
            achieved_period = 0.0

        cc.init(Ctx())
        cc.bus = bus
        cc.src = "dcc"
        cc.on_delay_warning()
        assert len(events) == 1
        assert events[0].fields["period"] == cc.period

    def test_cc_without_bus_is_safe(self):
        from repro.udt.cc import UdtNativeCC
        from repro.udt.params import UdtConfig

        cc = UdtNativeCC(UdtConfig())
        # no ctx, no bus: _emit must be a silent no-op
        cc._emit(CC_SAMPLE, period=1.0)
