"""Unit + property tests for send/receive buffers and overlapped IO."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.udt.buffers import ReceiveBuffer, SendBuffer
from repro.udt.params import MAX_SEQ_NO
from repro.udt.seqno import seq_inc


class TestSendBuffer:
    def test_packetises_at_payload_size(self):
        b = SendBuffer(10, 1456)
        assert b.add(3000) == 3000
        assert b.packetise(0) == 1456
        assert b.packetise(1) == 1456
        assert b.packetise(2) == 88  # remainder
        assert b.packetise(3) is None

    def test_capacity_limits_accept(self):
        b = SendBuffer(2, 1000)
        assert b.add(10_000) == 2000
        assert b.add(1) == 0

    def test_ack_frees_space(self):
        b = SendBuffer(2, 1000)
        b.add(2000)
        b.packetise(0)
        b.packetise(1)
        assert b.add(500) == 0
        assert b.ack_upto(1) == 1  # releases seq 0 only
        assert b.add(500) == 500

    def test_lookup_for_retransmission(self):
        b = SendBuffer(4, 1000)
        b.add(1500)
        b.packetise(7)
        b.packetise(8)
        assert b.lookup(7) == (1000, None)
        assert b.lookup(8) == (500, None)
        b.ack_upto(8)
        assert b.lookup(7) is None
        assert b.lookup(8) is not None

    def test_real_data_round_trip(self):
        b = SendBuffer(4, 4)
        payload = b"abcdefghij"
        b.add(len(payload), payload)
        sizes = [b.packetise(s) for s in (0, 1, 2)]
        assert sizes == [4, 4, 2]
        data = b"".join(b.lookup(s)[1] for s in (0, 1, 2))
        assert data == payload

    def test_wraparound_ack(self):
        b = SendBuffer(8, 100)
        top = MAX_SEQ_NO - 2
        b.add(400)
        for i in range(4):
            b.packetise(seq_inc(top, i))
        assert b.ack_upto(seq_inc(top, 3)) == 3
        assert b.inflight_packets == 1

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            SendBuffer(2, 100).add(-1)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SendBuffer(0, 100)


class TestReceiveBuffer:
    def _buf(self, cap=8):
        delivered = []
        rb = ReceiveBuffer(cap, lambda size, data: delivered.append((size, data)))
        rb.start(0)
        return rb, delivered

    def test_in_order_delivery(self):
        rb, out = self._buf()
        rb.on_data(0, 100)
        rb.on_data(1, 100)
        assert len(out) == 2
        assert rb.delivered_bytes == 200

    def test_reorders_gap(self):
        rb, out = self._buf()
        rb.on_data(0, 100)
        rb.on_data(2, 100)  # hole at 1
        assert len(out) == 1
        rb.on_data(1, 100)
        assert len(out) == 3
        assert rb.next_expected == 3

    def test_duplicate_rejected(self):
        rb, out = self._buf()
        rb.on_data(0, 100)
        assert not rb.on_data(0, 100)
        assert rb.duplicates == 1
        rb.on_data(2, 100)
        assert not rb.on_data(2, 100)  # held duplicate
        assert rb.duplicates == 2

    def test_overflow_rejected(self):
        rb, out = self._buf(cap=4)
        assert not rb.on_data(4, 100)  # offset 4 >= capacity 4
        assert rb.on_data(3, 100)

    def test_available_shrinks_with_held(self):
        rb, out = self._buf(cap=8)
        rb.on_data(3, 100)
        rb.on_data(5, 100)
        assert rb.available == 6

    def test_speculation_counters(self):
        rb, _ = self._buf()
        rb.on_data(0, 100)  # hit (expected 0)
        rb.on_data(1, 100)  # hit
        rb.on_data(3, 100)  # miss (loss of 2)
        rb.on_data(2, 100)  # miss (retransmission)
        rb.on_data(4, 100)  # hit again
        assert rb.speculation_hits == 3
        assert rb.speculation_misses == 2

    def test_overlapped_io_zero_copy_accounting(self):
        rb, _ = self._buf()
        rb.post_user_buffer(250)
        rb.on_data(0, 100)
        rb.on_data(1, 100)
        rb.on_data(2, 100)
        assert rb.zero_copy_bytes == 200
        assert rb.copied_bytes == 100

    def test_not_started_raises(self):
        rb = ReceiveBuffer(4)
        with pytest.raises(RuntimeError):
            rb.on_data(0, 10)

    def test_wraparound_sequence_delivery(self):
        out = []
        rb = ReceiveBuffer(8, lambda s, d: out.append(s))
        start = MAX_SEQ_NO - 2
        rb.start(start)
        for i in range(5):
            rb.on_data(seq_inc(start, i), 10)
        assert len(out) == 5
        assert rb.next_expected == 3


@settings(max_examples=100)
@given(
    order=st.permutations(list(range(12))),
    sizes=st.lists(st.integers(1, 1456), min_size=12, max_size=12),
)
def test_receive_buffer_delivers_everything_in_order(order, sizes):
    """Whatever arrival order, delivery is exactly seq order, once each."""
    delivered = []
    rb = ReceiveBuffer(16, lambda size, data: delivered.append(size))
    rb.start(0)
    for seq in order:
        rb.on_data(seq, sizes[seq])
    assert delivered == sizes
    assert rb.delivered_packets == 12
